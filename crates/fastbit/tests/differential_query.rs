//! Differential tests: index-accelerated query evaluation versus the
//! sequential-scan baseline (the paper's "Custom" engine).
//!
//! For randomized compound range queries the row set produced through the
//! bitmap indexes (including boundary-bin candidate checks) must be exactly
//! the row set produced by scanning the raw columns.

use fastbit::index::BitmapIndex;
use fastbit::query::{
    evaluate_with_strategy, parse_query, ColumnProvider, ExecStrategy, QueryExpr, ValueRange,
};
use fastbit::scan::scan_query;
use histogram::Binning;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

struct MemProvider {
    columns: HashMap<String, Vec<f64>>,
    indexes: HashMap<String, BitmapIndex>,
    rows: usize,
}

impl ColumnProvider for MemProvider {
    fn num_rows(&self) -> usize {
        self.rows
    }
    fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(|v| v.as_slice())
    }
    fn index(&self, name: &str) -> Option<&BitmapIndex> {
        self.indexes.get(name)
    }
}

const COLUMNS: [&str; 3] = ["px", "x", "y"];

/// A provider with three indexed columns of different shapes: uniform,
/// heavy-tailed (mostly thermal background plus a beam-like tail) and signed.
fn provider(n: usize, bins: usize, seed: u64) -> MemProvider {
    let mut rng = StdRng::seed_from_u64(seed);
    let px: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < 0.05 {
                rng.gen_range(5e10..1e11) // accelerated beam tail
            } else {
                rng.gen_range(0.0..1e10) // thermal background
            }
        })
        .collect();
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e-3)).collect();
    let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
    let mut columns = HashMap::new();
    let mut indexes = HashMap::new();
    for (name, data) in [("px", px), ("x", x), ("y", y)] {
        indexes.insert(
            name.to_string(),
            BitmapIndex::build(&data, &Binning::EqualWidth { bins }).unwrap(),
        );
        columns.insert(name.to_string(), data);
    }
    MemProvider {
        columns,
        indexes,
        rows: n,
    }
}

/// A random threshold inside the live range of `column`, sometimes snapped
/// exactly onto an index bin boundary to exercise the index-exact path.
fn random_threshold(p: &MemProvider, column: &str, rng: &mut StdRng) -> f64 {
    let edges = p.indexes[column].edges();
    if rng.gen_range(0..3u32) == 0 {
        let b = edges.boundaries();
        b[rng.gen_range(0..b.len())]
    } else {
        rng.gen_range(edges.lo()..edges.hi())
    }
}

fn random_range(p: &MemProvider, column: &str, rng: &mut StdRng) -> ValueRange {
    let a = random_threshold(p, column, rng);
    let b = random_threshold(p, column, rng);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    match rng.gen_range(0..6u32) {
        0 => ValueRange::gt(a),
        1 => ValueRange::ge(a),
        2 => ValueRange::lt(a),
        3 => ValueRange::le(a),
        4 => ValueRange::between(lo, hi),
        _ => ValueRange::between_inclusive(lo, hi),
    }
}

/// A random query tree of up to `depth` levels of AND/OR/NOT over random
/// single-column range predicates.
fn random_query(p: &MemProvider, rng: &mut StdRng, depth: usize) -> QueryExpr {
    let col = COLUMNS[rng.gen_range(0..COLUMNS.len())];
    if depth == 0 || rng.gen_range(0..4u32) == 0 {
        return QueryExpr::pred(col, random_range(p, col, rng));
    }
    let left = random_query(p, rng, depth - 1);
    match rng.gen_range(0..3u32) {
        0 => left.and(random_query(p, rng, depth - 1)),
        1 => left.or(random_query(p, rng, depth - 1)),
        _ => left.not(),
    }
}

#[test]
fn random_compound_queries_index_matches_scan() {
    let p = provider(20_000, 128, 7);
    let mut rng = StdRng::seed_from_u64(1234);
    for case in 0..60 {
        let q = random_query(&p, &mut rng, 3);
        let indexed = evaluate_with_strategy(&q, &p, ExecStrategy::Auto).unwrap();
        let scanned = evaluate_with_strategy(&q, &p, ExecStrategy::ScanOnly).unwrap();
        assert_eq!(
            indexed.to_rows(),
            scanned.to_rows(),
            "case {case}: {q:?} (indexed {} vs scanned {} rows)",
            indexed.count(),
            scanned.count()
        );
    }
}

#[test]
fn index_only_strategy_matches_scan() {
    // IndexOnly still performs candidate checks against the raw column; it
    // only refuses to run when a predicate has no index at all.
    let p = provider(10_000, 64, 8);
    let mut rng = StdRng::seed_from_u64(4321);
    for case in 0..40 {
        let q = random_query(&p, &mut rng, 2);
        let indexed = evaluate_with_strategy(&q, &p, ExecStrategy::IndexOnly).unwrap();
        let scanned = scan_query(&q, &p).unwrap();
        assert_eq!(indexed.to_rows(), scanned.to_rows(), "case {case}: {q:?}");
    }
}

#[test]
fn boundary_bin_candidate_checks_are_exact() {
    // Thresholds strictly inside a bin force the boundary-bin candidate
    // check; thresholds exactly on a boundary must be answerable from the
    // index alone. Both must equal the scan on every count.
    let p = provider(15_000, 32, 9);
    let idx = &p.indexes["y"];
    let edges = idx.edges();
    for bin in [0, 7, 15, 31] {
        let (lo, hi) = edges.bin_range(bin);
        let mid = 0.5 * (lo + hi);
        for threshold in [lo, mid, hi] {
            for range in [
                ValueRange::gt(threshold),
                ValueRange::ge(threshold),
                ValueRange::lt(threshold),
                ValueRange::le(threshold),
            ] {
                let q = QueryExpr::pred("y", range.clone());
                let indexed = evaluate_with_strategy(&q, &p, ExecStrategy::Auto).unwrap();
                let scanned = evaluate_with_strategy(&q, &p, ExecStrategy::ScanOnly).unwrap();
                assert_eq!(
                    indexed.to_rows(),
                    scanned.to_rows(),
                    "bin {bin} threshold {threshold} range {range:?}"
                );
            }
        }
        // Boundary-aligned half-open ranges are exact in the index.
        assert!(
            idx.answers_exactly(&ValueRange::ge(lo)),
            "bin {bin}: >= lower boundary should be index-exact"
        );
    }
}

#[test]
fn direct_index_evaluate_matches_predicate_scan() {
    let p = provider(12_000, 64, 10);
    let mut rng = StdRng::seed_from_u64(77);
    for col in COLUMNS {
        let data = &p.columns[col];
        let idx = &p.indexes[col];
        for _ in 0..25 {
            let range = random_range(&p, col, &mut rng);
            let got = idx.evaluate(&range, data).unwrap();
            let expect: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, &v)| range.contains(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got.to_rows(), expect, "{col} {range:?}");

            // The index-only split must be consistent: hits ⊆ truth, and
            // truth ⊆ hits ∪ candidates.
            let (hits, candidates) = idx.evaluate_index_only(&range).unwrap();
            let hit_rows = hits.to_rows();
            assert!(
                hit_rows.iter().all(|&r| range.contains(data[r])),
                "{col} {range:?}: index-only hit outside range"
            );
            let union = hits.or(&candidates).unwrap();
            let union_rows: std::collections::HashSet<usize> = union.iter_rows().collect();
            assert!(
                expect.iter().all(|r| union_rows.contains(r)),
                "{col} {range:?}: true row missing from hits ∪ candidates"
            );
        }
    }
}

#[test]
fn parsed_paper_queries_index_matches_scan() {
    let p = provider(20_000, 128, 11);
    // Paper-style compound strings, including the Figure 5 beam selection
    // shape (momentum threshold) and refinements.
    let queries = [
        "px > 5e10",
        "px > 5e10 && x > 2e-4",
        "px > 2e10 && px < 9e10",
        "y > -10 && y < 10 && px > 1e10",
        "px > 8e10 || y < -40",
        "!(y > 0) && px > 1e9",
    ];
    for q in queries {
        let expr = parse_query(q).unwrap();
        let indexed = evaluate_with_strategy(&expr, &p, ExecStrategy::Auto).unwrap();
        let scanned = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
        assert_eq!(indexed.to_rows(), scanned.to_rows(), "query {q}");
        assert!(
            indexed.count() > 0,
            "query {q} selected nothing — not a meaningful differential case"
        );
    }
}
