//! Differential property suite for the chunked parallel engine.
//!
//! Seeded randomized compound queries are evaluated over columns containing
//! NaN and ±∞, across chunk sizes {1, 31, 1000, n} × thread counts
//! {1, 2, 8}, and the parallel selections and histograms must be identical
//! to the sequential oracle every time — the pin that makes "parallel" mean
//! "faster", never "different".

use std::collections::HashMap;

use fastbit::par::{evaluate_chunked, ParExec};
use fastbit::{
    evaluate_with_strategy, BinSpec, BitmapIndex, ColumnProvider, ExecStrategy, HistEngine,
    HistogramEngine, Predicate, QueryExpr, ValueRange,
};
use histogram::Binning;
use rand::{rngs::StdRng, Rng, SeedableRng};

struct MemProvider {
    columns: HashMap<String, Vec<f64>>,
    indexes: HashMap<String, BitmapIndex>,
    rows: usize,
}

impl ColumnProvider for MemProvider {
    fn num_rows(&self) -> usize {
        self.rows
    }
    fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(|v| v.as_slice())
    }
    fn index(&self, name: &str) -> Option<&BitmapIndex> {
        self.indexes.get(name)
    }
}

const COLUMNS: [&str; 4] = ["a", "b", "c", "d"];

/// Columns exercising every awkward value class: smooth random data, heavy
/// ties (integer-quantized), NaN islands, and ±∞ outliers.
fn provider(n: usize, seed: u64, with_indexes: bool) -> MemProvider {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
    // Quantized: long constant runs so chunks land exactly on repeated values.
    let b: Vec<f64> = (0..n)
        .map(|_| (rng.gen_range(-5.0..5.0f64)).floor())
        .collect();
    // NaN islands plus ±∞ sprinkled in.
    let c: Vec<f64> = (0..n)
        .map(|i| {
            if i % 97 < 13 {
                f64::NAN
            } else if i % 251 == 0 {
                f64::INFINITY
            } else if i % 383 == 0 {
                f64::NEG_INFINITY
            } else {
                rng.gen_range(-1.0..1.0)
            }
        })
        .collect();
    // A monotone ramp: zone maps prune aggressively on it.
    let d: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
    let mut columns = HashMap::new();
    let mut indexes = HashMap::new();
    for (name, data) in [("a", a), ("b", b), ("c", c), ("d", d)] {
        if with_indexes {
            indexes.insert(
                name.to_string(),
                BitmapIndex::build(&data, &Binning::EqualWidth { bins: 64 }).unwrap(),
            );
        }
        columns.insert(name.to_string(), data);
    }
    MemProvider {
        columns,
        indexes,
        rows: n,
    }
}

/// A random range whose bounds are drawn from the column's own values half
/// the time, so predicates frequently land exactly on data (and chunk
/// boundary) values.
fn random_range(rng: &mut StdRng, values: &[f64]) -> ValueRange {
    let pick = |rng: &mut StdRng| -> f64 {
        if rng.gen_range(0.0..1.0) < 0.5 {
            let v = values[rng.gen_range(0..values.len())];
            if v.is_nan() {
                0.0
            } else {
                v
            }
        } else {
            rng.gen_range(-1200.0..1200.0)
        }
    };
    match rng.gen_range(0..5u32) {
        0 => ValueRange::gt(pick(rng)),
        1 => ValueRange::ge(pick(rng)),
        2 => ValueRange::lt(pick(rng)),
        3 => ValueRange::le(pick(rng)),
        _ => {
            let x = pick(rng);
            let y = pick(rng);
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            if rng.gen_range(0.0..1.0) < 0.5 {
                ValueRange::between(lo, hi)
            } else {
                ValueRange::between_inclusive(lo, hi)
            }
        }
    }
}

fn random_expr(rng: &mut StdRng, provider: &MemProvider, depth: usize) -> QueryExpr {
    if depth == 0 || rng.gen_range(0.0..1.0) < 0.4 {
        let column = COLUMNS[rng.gen_range(0..COLUMNS.len())];
        let values = &provider.columns[column];
        return QueryExpr::Pred(Predicate::new(column, random_range(rng, values)));
    }
    match rng.gen_range(0..3u32) {
        0 => QueryExpr::And(
            (0..rng.gen_range(2..4usize))
                .map(|_| random_expr(rng, provider, depth - 1))
                .collect(),
        ),
        1 => QueryExpr::Or(
            (0..rng.gen_range(2..4usize))
                .map(|_| random_expr(rng, provider, depth - 1))
                .collect(),
        ),
        _ => random_expr(rng, provider, depth - 1).not(),
    }
}

#[test]
fn randomized_queries_match_the_sequential_oracle() {
    let n = 3000;
    let p = provider(n, 0xC0FFEE, false);
    let mut rng = StdRng::seed_from_u64(42);
    for round in 0..40 {
        let expr = random_expr(&mut rng, &p, 3);
        let oracle = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
        for chunk_rows in [1usize, 31, 1000, n] {
            for threads in [1usize, 2, 8] {
                let exec = ParExec::new(threads, chunk_rows);
                let got = evaluate_chunked(&expr, &p, &exec).unwrap();
                assert_eq!(
                    got.to_rows(),
                    oracle.to_rows(),
                    "round {round}, chunk_rows {chunk_rows}, threads {threads}: {expr}"
                );
                assert_eq!(got.num_rows(), n);
            }
        }
    }
}

#[test]
fn randomized_queries_match_the_indexed_oracle_too() {
    // The chunked engine never touches the bitmap indexes; the indexed Auto
    // path must still agree row-for-row (index evaluation is exact).
    let n = 2000;
    let p = provider(n, 0xBEEF, true);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..15 {
        let expr = random_expr(&mut rng, &p, 2);
        let indexed = evaluate_with_strategy(&expr, &p, ExecStrategy::Auto).unwrap();
        let chunked = evaluate_chunked(&expr, &p, &ParExec::new(2, 113)).unwrap();
        assert_eq!(chunked.to_rows(), indexed.to_rows(), "{expr}");
    }
}

#[test]
fn chunked_result_is_invariant_across_configurations() {
    // For one chunk size, the WAH words themselves must be bit-identical for
    // every thread count and pruning setting (merge order is deterministic).
    let n = 4096;
    let p = provider(n, 99, false);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..10 {
        let expr = random_expr(&mut rng, &p, 3);
        let reference = evaluate_chunked(&expr, &p, &ParExec::new(1, 100)).unwrap();
        for exec in [
            ParExec::new(2, 100),
            ParExec::new(8, 100),
            ParExec::new(8, 100).without_pruning(),
        ] {
            assert_eq!(evaluate_chunked(&expr, &p, &exec).unwrap(), reference);
        }
    }
}

#[test]
fn empty_selections_are_preserved() {
    let n = 1000;
    let p = provider(n, 3, false);
    let miss = QueryExpr::pred("a", ValueRange::gt(1e9));
    for chunk_rows in [1usize, 31, 1000, n] {
        for threads in [1usize, 2, 8] {
            let got = evaluate_chunked(&miss, &p, &ParExec::new(threads, chunk_rows)).unwrap();
            assert!(got.is_none_selected());
            assert_eq!(got.num_rows(), n);
        }
    }
    // All-NaN column predicate also selects nothing.
    let all_nan = MemProvider {
        columns: HashMap::from([("a".to_string(), vec![f64::NAN; 500])]),
        indexes: HashMap::new(),
        rows: 500,
    };
    let got = evaluate_chunked(
        &QueryExpr::pred("a", ValueRange::all()),
        &all_nan,
        &ParExec::new(4, 64),
    )
    .unwrap();
    assert!(got.is_none_selected());
}

#[test]
fn randomized_conditional_histograms_match_bin_for_bin() {
    let n = 2500;
    let p = provider(n, 0xABBA, true);
    let engine = HistogramEngine::new(&p);
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..12 {
        let expr = random_expr(&mut rng, &p, 2);
        let column = COLUMNS[rng.gen_range(0..COLUMNS.len())];
        let spec = BinSpec::Uniform(rng.gen_range(4..96usize));
        for eng in [HistEngine::FastBit, HistEngine::Custom] {
            let seq = engine.hist1d(column, &spec, Some(&expr), eng);
            for chunk_rows in [1usize, 31, 1000, n] {
                for threads in [1usize, 2, 8] {
                    let exec = ParExec::new(threads, chunk_rows);
                    let par = engine.hist1d_par(column, &spec, Some(&expr), eng, &exec);
                    match (&seq, &par) {
                        (Ok(s), Ok(p)) => assert_eq!(
                            p, s,
                            "round {round}, {column}, {eng:?}, {chunk_rows}/{threads}"
                        ),
                        (Err(_), Err(_)) => {}
                        (s, p) => {
                            panic!("sequential {s:?} vs parallel {p:?} disagree on fallibility")
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn nan_heavy_histograms_match_including_out_of_range() {
    let n = 1500;
    let p = provider(n, 21, false);
    let engine = HistogramEngine::new(&p);
    // Column c holds NaN and ±∞; fixed edges force out-of-range accounting.
    let edges = histogram::BinEdges::uniform(-0.5, 0.5, 32).unwrap();
    let spec = BinSpec::Edges(edges);
    for condition in [None, Some(QueryExpr::pred("c", ValueRange::gt(-0.9)))] {
        let seq = engine
            .hist1d("c", &spec, condition.as_ref(), HistEngine::Custom)
            .unwrap();
        for threads in [1usize, 2, 8] {
            let par = engine
                .hist1d_par(
                    "c",
                    &spec,
                    condition.as_ref(),
                    HistEngine::Custom,
                    &ParExec::new(threads, 37),
                )
                .unwrap();
            assert_eq!(par, seq);
            assert_eq!(par.out_of_range(), seq.out_of_range());
        }
    }
}

/// The acceptance-criterion speedup probe: with 4 workers the chunked
/// engine must beat its own single-thread time by ≥ 2× on select and
/// conditional hist1d — asserted only where the hardware can express it
/// (≥ 4 cores); on smaller machines the byte-identity half still runs and
/// the timing lands in `BENCH_par_engine.json` instead.
#[test]
fn four_thread_speedup_when_cores_available() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let n = 600_000;
    let p = provider(n, 0xFEED, false);
    let engine = HistogramEngine::new(&p);
    let expr = QueryExpr::pred("a", ValueRange::gt(0.0))
        .and(QueryExpr::pred("c", ValueRange::between(-0.5, 0.5)));
    let spec = BinSpec::Uniform(1024);

    let seq_exec = ParExec::new(1, 4096);
    let par_exec = ParExec::new(4, 4096);
    let sel_seq = evaluate_chunked(&expr, &p, &seq_exec).unwrap();
    let sel_par = evaluate_chunked(&expr, &p, &par_exec).unwrap();
    assert_eq!(sel_par, sel_seq, "byte-identical selections");
    let h_seq = engine
        .hist1d_par("a", &spec, Some(&expr), HistEngine::Custom, &seq_exec)
        .unwrap();
    let h_par = engine
        .hist1d_par("a", &spec, Some(&expr), HistEngine::Custom, &par_exec)
        .unwrap();
    assert_eq!(h_par, h_seq, "bin-identical histograms");

    if cores < 4 {
        eprintln!("skipping timing assertion: only {cores} core(s) available");
        return;
    }
    let best = |f: &dyn Fn()| -> f64 {
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    // Retry the whole measurement a few times: shared CI runners (e.g. a
    // 4-vCPU ubuntu-latest with noisy neighbours) can transiently depress
    // the ratio; only a *sustained* miss across every attempt is a failure.
    let mut best_ratio = 0.0f64;
    for attempt in 0..4 {
        let t_seq = best(&|| {
            evaluate_chunked(&expr, &p, &seq_exec).unwrap();
            engine
                .hist1d_par("a", &spec, Some(&expr), HistEngine::Custom, &seq_exec)
                .unwrap();
        });
        let t_par = best(&|| {
            evaluate_chunked(&expr, &p, &par_exec).unwrap();
            engine
                .hist1d_par("a", &spec, Some(&expr), HistEngine::Custom, &par_exec)
                .unwrap();
        });
        best_ratio = best_ratio.max(t_seq / t_par);
        if best_ratio >= 2.0 {
            eprintln!("{best_ratio:.2}x at 4 threads (attempt {attempt})");
            return;
        }
    }
    panic!("expected ≥2x at 4 threads; best of 4 attempts was {best_ratio:.2}x");
}
