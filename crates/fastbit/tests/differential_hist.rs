//! Differential tests: index-accelerated histograms versus brute-force
//! recomputation from the raw columns.
//!
//! Unconditional and conditional `hist1d`/`hist2d` counts from the FastBit
//! engine must match a from-scratch binning of the (selected) data, and
//! total counts must be conserved: every selected row lands in exactly one
//! bin or in the out-of-range tally.

use fastbit::hist::{BinSpec, HistEngine, HistogramEngine};
use fastbit::index::BitmapIndex;
use fastbit::query::{ColumnProvider, QueryExpr, ValueRange};
use histogram::{BinEdges, Binning};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

struct MemProvider {
    columns: HashMap<String, Vec<f64>>,
    indexes: HashMap<String, BitmapIndex>,
    rows: usize,
}

impl ColumnProvider for MemProvider {
    fn num_rows(&self) -> usize {
        self.rows
    }
    fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(|v| v.as_slice())
    }
    fn index(&self, name: &str) -> Option<&BitmapIndex> {
        self.indexes.get(name)
    }
}

fn provider(n: usize, bins: usize, seed: u64) -> MemProvider {
    let mut rng = StdRng::seed_from_u64(seed);
    let px: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e11)).collect();
    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e-3)).collect();
    let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
    let mut columns = HashMap::new();
    let mut indexes = HashMap::new();
    for (name, data) in [("px", px), ("x", x), ("y", y)] {
        indexes.insert(
            name.to_string(),
            BitmapIndex::build(&data, &Binning::EqualWidth { bins }).unwrap(),
        );
        columns.insert(name.to_string(), data);
    }
    MemProvider {
        columns,
        indexes,
        rows: n,
    }
}

/// Brute-force 1D binning: linear search of the edge array per value.
fn brute_hist1d(edges: &BinEdges, data: &[f64], keep: impl Fn(usize) -> bool) -> Vec<u64> {
    let b = edges.boundaries();
    let mut counts = vec![0u64; edges.num_bins()];
    for (row, &v) in data.iter().enumerate() {
        if !keep(row) {
            continue;
        }
        for i in 0..counts.len() {
            // Last bin is closed on the right, matching Hist1D::push.
            let hit = if i + 1 == counts.len() {
                v >= b[i] && v <= b[i + 1]
            } else {
                v >= b[i] && v < b[i + 1]
            };
            if hit {
                counts[i] += 1;
                break;
            }
        }
    }
    counts
}

#[test]
fn unconditional_hist1d_matches_bruteforce() {
    let n = 10_000;
    let p = provider(n, 64, 31);
    let engine = HistogramEngine::new(&p);
    for col in ["px", "x", "y"] {
        // Uniform(64) matches the index resolution, so the FastBit engine
        // answers this straight off the index bin counts.
        let fast = engine
            .hist1d(col, &BinSpec::Uniform(64), None, HistEngine::FastBit)
            .unwrap();
        let custom = engine
            .hist1d(col, &BinSpec::Uniform(64), None, HistEngine::Custom)
            .unwrap();
        let brute = brute_hist1d(fast.edges(), &p.columns[col], |_| true);
        assert_eq!(fast.counts(), brute.as_slice(), "{col}: FastBit vs brute");
        assert_eq!(custom.counts(), brute.as_slice(), "{col}: Custom vs brute");
        assert_eq!(
            fast.total() + fast.out_of_range(),
            n as u64,
            "{col}: every row binned or tallied out-of-range"
        );
    }
}

#[test]
fn conditional_hist1d_matches_bruteforce() {
    let n = 12_000;
    let p = provider(n, 64, 32);
    let engine = HistogramEngine::new(&p);
    let cond = QueryExpr::pred("px", ValueRange::gt(6e10))
        .and(QueryExpr::pred("y", ValueRange::between(-25.0, 25.0)));
    let keep: Vec<bool> = (0..n)
        .map(|r| {
            p.columns["px"][r] > 6e10
                && (-25.0..50.0).contains(&p.columns["y"][r])
                && p.columns["y"][r] < 25.0
        })
        .collect();
    let expected_rows = keep.iter().filter(|&&k| k).count() as u64;
    assert!(expected_rows > 0, "condition must select something");

    for eng in [HistEngine::FastBit, HistEngine::Custom] {
        let h = engine
            .hist1d("x", &BinSpec::Uniform(48), Some(&cond), eng)
            .unwrap();
        let brute = brute_hist1d(h.edges(), &p.columns["x"], |r| keep[r]);
        assert_eq!(h.counts(), brute.as_slice(), "engine {eng:?}");
        assert_eq!(
            h.total() + h.out_of_range(),
            expected_rows,
            "engine {eng:?}"
        );
    }
}

#[test]
fn unconditional_hist2d_matches_bruteforce() {
    let n = 8_000;
    let p = provider(n, 64, 33);
    let engine = HistogramEngine::new(&p);
    // Shared explicit edges so both engines and the brute force bin
    // identically.
    let x_edges = BinEdges::uniform(0.0, 1e-3, 32).unwrap();
    let px_edges = BinEdges::uniform(0.0, 1e11, 40).unwrap();
    let xspec = BinSpec::Edges(x_edges.clone());
    let pspec = BinSpec::Edges(px_edges.clone());

    let xs = &p.columns["x"];
    let pxs = &p.columns["px"];
    let bx = brute_hist1d(&x_edges, xs, |_| true); // marginal sanity
    let mut brute = vec![0u64; 32 * 40];
    for r in 0..n {
        let ix = (0..32).find(|&i| {
            let (lo, hi) = x_edges.bin_range(i);
            xs[r] >= lo && (xs[r] < hi || (i == 31 && xs[r] <= hi))
        });
        let iy = (0..40).find(|&i| {
            let (lo, hi) = px_edges.bin_range(i);
            pxs[r] >= lo && (pxs[r] < hi || (i == 39 && pxs[r] <= hi))
        });
        if let (Some(ix), Some(iy)) = (ix, iy) {
            brute[iy * 32 + ix] += 1;
        }
    }

    for eng in [HistEngine::FastBit, HistEngine::Custom] {
        let h = engine.hist2d("x", "px", &xspec, &pspec, None, eng).unwrap();
        assert_eq!(h.shape(), (32, 40), "engine {eng:?}");
        let got: Vec<u64> = (0..40)
            .flat_map(|iy| (0..32).map(move |ix| (ix, iy)))
            .map(|(ix, iy)| h.count(ix, iy))
            .collect();
        assert_eq!(got, brute, "engine {eng:?}: full 2D count grid");
        assert_eq!(h.total() + h.out_of_range(), n as u64, "engine {eng:?}");
        assert_eq!(
            h.marginal_x().counts(),
            bx.as_slice(),
            "engine {eng:?}: x marginal"
        );
    }
}

#[test]
fn conditional_hist2d_engines_agree_and_conserve_totals() {
    let n = 9_000;
    let p = provider(n, 128, 34);
    let engine = HistogramEngine::new(&p);
    let mut rng = StdRng::seed_from_u64(35);
    for case in 0..20 {
        let t = rng.gen_range(1e10..9e10);
        let cond = QueryExpr::pred("px", ValueRange::gt(t));
        let xspec = BinSpec::Edges(BinEdges::uniform(0.0, 1e-3, 24).unwrap());
        let yspec = BinSpec::Edges(BinEdges::uniform(-50.0, 50.0, 24).unwrap());
        let fast = engine
            .hist2d("x", "y", &xspec, &yspec, Some(&cond), HistEngine::FastBit)
            .unwrap();
        let custom = engine
            .hist2d("x", "y", &xspec, &yspec, Some(&cond), HistEngine::Custom)
            .unwrap();
        assert_eq!(fast.counts(), custom.counts(), "case {case} threshold {t}");
        let selected = p.columns["px"].iter().filter(|&&v| v > t).count() as u64;
        assert_eq!(fast.total() + fast.out_of_range(), selected, "case {case}");
        assert_eq!(
            custom.total() + custom.out_of_range(),
            selected,
            "case {case}"
        );
    }
}

#[test]
fn hist2d_pairs_match_individual_hist2d() {
    let p = provider(6_000, 64, 36);
    let engine = HistogramEngine::new(&p);
    let cond = QueryExpr::pred("px", ValueRange::gt(4e10));
    let pairs = vec![
        ("x".to_string(), "px".to_string()),
        ("px".to_string(), "y".to_string()),
    ];
    let spec = BinSpec::Uniform(32);
    let batch = engine
        .hist2d_pairs(&pairs, &spec, Some(&cond), HistEngine::FastBit)
        .unwrap();
    assert_eq!(batch.len(), 2);
    for (i, (cx, cy)) in pairs.iter().enumerate() {
        let single = engine
            .hist2d(cx, cy, &spec, &spec, Some(&cond), HistEngine::FastBit)
            .unwrap();
        assert_eq!(
            batch[i].counts(),
            single.counts(),
            "pair {cx}/{cy}: batched vs single evaluation"
        );
    }
    // Both pairs share one selection, so their totals (plus out-of-range)
    // must agree with each other and with the selection size.
    let selected = p.columns["px"].iter().filter(|&&v| v > 4e10).count() as u64;
    for (i, h) in batch.iter().enumerate() {
        assert_eq!(h.total() + h.out_of_range(), selected, "pair {i}");
    }
}
