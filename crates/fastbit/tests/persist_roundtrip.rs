//! Round-trip property suite for the persist layer.
//!
//! Seeded random datasets and indexes — including NaN/±∞ columns, empty
//! columns and constant columns — are serialized through `fastbit::persist`
//! and reloaded, and the reloaded indexes must answer every query of a
//! seeded compound-query battery *byte-identically* to the originals
//! (identical row sets and identical WAH selection words), across both the
//! sequential evaluator and the chunked-parallel engine. This extends the
//! differential discipline of the PR 3 suites to bytes on disk: what was
//! persisted must be provably equivalent to what was in memory.

use std::collections::HashMap;

use fastbit::par::{evaluate_chunked, ParExec};
use fastbit::persist::{
    decode_id_index, decode_index, decode_zone_maps, encode_id_index, encode_index,
    encode_zone_maps,
};
use fastbit::{
    evaluate_with_strategy, BinSpec, BitmapIndex, ColumnProvider, ExecStrategy, HistEngine,
    HistogramEngine, IdIndex, Predicate, QueryExpr, ValueRange, ZoneMaps,
};
use histogram::{BinEdges, Binning};
use rand::{rngs::StdRng, Rng, SeedableRng};

struct MemProvider {
    columns: HashMap<String, Vec<f64>>,
    indexes: HashMap<String, BitmapIndex>,
    rows: usize,
}

impl ColumnProvider for MemProvider {
    fn num_rows(&self) -> usize {
        self.rows
    }
    fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(|v| v.as_slice())
    }
    fn index(&self, name: &str) -> Option<&BitmapIndex> {
        self.indexes.get(name)
    }
}

const COLUMNS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Columns exercising every awkward value class: smooth random data, heavy
/// ties, NaN islands with ±∞ outliers, a monotone ramp, and a constant
/// column (whose index needs explicit edges — data-derived ones degenerate).
fn provider(n: usize, seed: u64) -> MemProvider {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
    let b: Vec<f64> = (0..n)
        .map(|_| (rng.gen_range(-5.0..5.0f64)).floor())
        .collect();
    let c: Vec<f64> = (0..n)
        .map(|i| {
            if i % 89 < 11 {
                f64::NAN
            } else if i % 193 == 0 {
                f64::INFINITY
            } else if i % 241 == 0 {
                f64::NEG_INFINITY
            } else {
                rng.gen_range(-1.0..1.0)
            }
        })
        .collect();
    let d: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
    let e: Vec<f64> = vec![7.5; n];
    let mut columns = HashMap::new();
    let mut indexes = HashMap::new();
    for (name, data) in [("a", a), ("b", b), ("c", c), ("d", d)] {
        let binning = if name == "b" {
            Binning::EqualWeight { bins: 24 }
        } else {
            Binning::EqualWidth { bins: 32 }
        };
        indexes.insert(
            name.to_string(),
            BitmapIndex::build(&data, &binning).unwrap(),
        );
        columns.insert(name.to_string(), data);
    }
    let edges = BinEdges::uniform(0.0, 10.0, 8).unwrap();
    indexes.insert(
        "e".to_string(),
        BitmapIndex::build_with_edges(&e, edges).unwrap(),
    );
    columns.insert("e".to_string(), e);
    MemProvider {
        columns,
        indexes,
        rows: n,
    }
}

/// The same provider with every index pushed through encode → decode.
fn reloaded(p: &MemProvider) -> MemProvider {
    let mut indexes = HashMap::new();
    for (name, idx) in &p.indexes {
        let mut buf = Vec::new();
        encode_index(idx, &mut buf);
        indexes.insert(name.clone(), decode_index(&buf).unwrap());
    }
    MemProvider {
        columns: p.columns.clone(),
        indexes,
        rows: p.rows,
    }
}

fn random_range(rng: &mut StdRng, values: &[f64]) -> ValueRange {
    let pick = |rng: &mut StdRng| -> f64 {
        if !values.is_empty() && rng.gen_range(0.0..1.0) < 0.5 {
            let v = values[rng.gen_range(0..values.len())];
            if v.is_nan() {
                0.0
            } else {
                v
            }
        } else {
            rng.gen_range(-1200.0..1200.0)
        }
    };
    match rng.gen_range(0..5u32) {
        0 => ValueRange::gt(pick(rng)),
        1 => ValueRange::ge(pick(rng)),
        2 => ValueRange::lt(pick(rng)),
        3 => ValueRange::le(pick(rng)),
        _ => {
            let x = pick(rng);
            let y = pick(rng);
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            if rng.gen_range(0.0..1.0) < 0.5 {
                ValueRange::between(lo, hi)
            } else {
                ValueRange::between_inclusive(lo, hi)
            }
        }
    }
}

fn random_expr(rng: &mut StdRng, provider: &MemProvider, depth: usize) -> QueryExpr {
    if depth == 0 || rng.gen_range(0.0..1.0) < 0.4 {
        let column = COLUMNS[rng.gen_range(0..COLUMNS.len())];
        let values = &provider.columns[column];
        return QueryExpr::Pred(Predicate::new(column, random_range(rng, values)));
    }
    match rng.gen_range(0..3u32) {
        0 => QueryExpr::And(
            (0..rng.gen_range(2..4usize))
                .map(|_| random_expr(rng, provider, depth - 1))
                .collect(),
        ),
        1 => QueryExpr::Or(
            (0..rng.gen_range(2..4usize))
                .map(|_| random_expr(rng, provider, depth - 1))
                .collect(),
        ),
        _ => random_expr(rng, provider, depth - 1).not(),
    }
}

#[test]
fn reloaded_indexes_are_structurally_identical() {
    let p = provider(2500, 0x5EED);
    let r = reloaded(&p);
    for name in COLUMNS {
        let original = &p.indexes[name];
        let back = &r.indexes[name];
        assert_eq!(back.num_rows(), original.num_rows(), "{name}");
        assert_eq!(
            back.edges().boundaries(),
            original.edges().boundaries(),
            "{name}: boundaries bit-exact"
        );
        assert_eq!(back.bin_counts(), original.bin_counts(), "{name}");
        assert_eq!(back.unbinned_rows(), original.unbinned_rows(), "{name}");
        assert_eq!(
            back.unbinned_matchable(),
            original.unbinned_matchable(),
            "{name}: candidate-check behaviour preserved"
        );
        for bin in 0..original.num_bins() {
            assert_eq!(
                back.bitmap(bin).as_words(),
                original.bitmap(bin).as_words(),
                "{name} bin {bin}: WAH words byte-identical (no recompression)"
            );
        }
    }
}

#[test]
fn compound_query_battery_is_byte_identical_after_reload() {
    let n = 3000;
    let p = provider(n, 0xC0FFEE);
    let r = reloaded(&p);
    let mut rng = StdRng::seed_from_u64(1234);
    for round in 0..60 {
        let expr = random_expr(&mut rng, &p, 3);
        let oracle = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
        let original = evaluate_with_strategy(&expr, &p, ExecStrategy::Auto).unwrap();
        let from_disk = evaluate_with_strategy(&expr, &r, ExecStrategy::Auto).unwrap();
        assert_eq!(
            from_disk.to_rows(),
            oracle.to_rows(),
            "round {round}: reloaded index vs scan oracle: {expr}"
        );
        assert_eq!(
            from_disk.as_wah().as_words(),
            original.as_wah().as_words(),
            "round {round}: WAH selection words byte-identical: {expr}"
        );
    }
}

/// Dual-encoding indexes pushed through the persist codecs — equality via
/// `encode_index`/`decode_index`, cumulative bitmaps via
/// `encode_range_bitmaps`/`decode_range_bitmaps` + attach — must come back
/// with bit-exact WAH words for both encodings and answer the compound
/// battery byte-identically under the cost-selected Auto path.
#[test]
fn range_encoded_indexes_survive_reload_byte_identically() {
    use fastbit::persist::{decode_range_bitmaps, encode_range_bitmaps};

    let n = 2500;
    let mut p = provider(n, 0xDA7A);
    for idx in p.indexes.values_mut() {
        idx.build_range_encoding().unwrap();
    }
    let mut reloaded_indexes = HashMap::new();
    for (name, idx) in &p.indexes {
        let mut buf = Vec::new();
        encode_index(idx, &mut buf);
        let mut back = decode_index(&buf).unwrap();
        let mut rbuf = Vec::new();
        encode_range_bitmaps(idx.range_bitmaps().unwrap(), &mut rbuf);
        back.attach_range_bitmaps(decode_range_bitmaps(&rbuf).unwrap())
            .unwrap();
        for (bin, (a, b)) in idx
            .range_bitmaps()
            .unwrap()
            .iter()
            .zip(back.range_bitmaps().unwrap())
            .enumerate()
        {
            assert_eq!(
                a.as_words(),
                b.as_words(),
                "{name} cumulative bin {bin}: WAH words byte-identical"
            );
        }
        reloaded_indexes.insert(name.clone(), back);
    }
    let r = MemProvider {
        columns: p.columns.clone(),
        indexes: reloaded_indexes,
        rows: p.rows,
    };
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for round in 0..40 {
        let expr = random_expr(&mut rng, &p, 3);
        let oracle = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
        let original = evaluate_with_strategy(&expr, &p, ExecStrategy::Auto).unwrap();
        let from_disk = evaluate_with_strategy(&expr, &r, ExecStrategy::Auto).unwrap();
        assert_eq!(
            from_disk.to_rows(),
            oracle.to_rows(),
            "round {round}: {expr}"
        );
        assert_eq!(
            from_disk.as_wah().as_words(),
            original.as_wah().as_words(),
            "round {round}: dual-encoding WAH selection words: {expr}"
        );
    }
}

#[test]
fn chunked_parallel_engine_agrees_on_reloaded_providers() {
    let n = 2000;
    let p = provider(n, 0xBEEF);
    let r = reloaded(&p);
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..12 {
        let expr = random_expr(&mut rng, &p, 2);
        let oracle = evaluate_with_strategy(&expr, &p, ExecStrategy::Auto).unwrap();
        for threads in [1usize, 2, 8] {
            for chunk_rows in [1usize, 997, n] {
                let exec = ParExec::new(threads, chunk_rows);
                let chunked = evaluate_chunked(&expr, &r, &exec).unwrap();
                assert_eq!(
                    chunked.to_rows(),
                    oracle.to_rows(),
                    "round {round}, threads {threads}, chunk {chunk_rows}: {expr}"
                );
            }
        }
    }
}

#[test]
fn conditional_histograms_match_after_reload() {
    let n = 2200;
    let p = provider(n, 0xABBA);
    let r = reloaded(&p);
    let original = HistogramEngine::new(&p);
    let from_disk = HistogramEngine::new(&r);
    let mut rng = StdRng::seed_from_u64(5);
    for round in 0..10 {
        let expr = random_expr(&mut rng, &p, 2);
        let column = COLUMNS[rng.gen_range(0..COLUMNS.len())];
        let spec = BinSpec::Uniform(rng.gen_range(4..64usize));
        let a = original.hist1d(column, &spec, Some(&expr), HistEngine::FastBit);
        let b = from_disk.hist1d(column, &spec, Some(&expr), HistEngine::FastBit);
        match (a, b) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "round {round}, {column}: {expr}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("fallibility diverged after reload: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn empty_and_single_row_columns_roundtrip() {
    for n in [0usize, 1] {
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let edges = BinEdges::uniform(-1.0, 1.0, 4).unwrap();
        let idx = BitmapIndex::build_with_edges(&data, edges).unwrap();
        let mut buf = Vec::new();
        encode_index(&idx, &mut buf);
        let back = decode_index(&buf).unwrap();
        assert_eq!(back.num_rows(), n);
        assert_eq!(back.bin_counts(), idx.bin_counts());
        let got = back.evaluate(&ValueRange::all(), &data).unwrap();
        let want = idx.evaluate(&ValueRange::all(), &data).unwrap();
        assert_eq!(got.to_rows(), want.to_rows());
    }
}

#[test]
fn constant_and_all_nan_columns_roundtrip() {
    let constant = vec![42.0; 500];
    let edges = BinEdges::uniform(40.0, 44.0, 4).unwrap();
    let idx = BitmapIndex::build_with_edges(&constant, edges).unwrap();
    let mut buf = Vec::new();
    encode_index(&idx, &mut buf);
    let back = decode_index(&buf).unwrap();
    for range in [
        ValueRange::gt(41.0),
        ValueRange::le(42.0),
        ValueRange::between(43.0, 44.0),
    ] {
        assert_eq!(
            back.evaluate(&range, &constant).unwrap().to_rows(),
            idx.evaluate(&range, &constant).unwrap().to_rows(),
            "{range:?}"
        );
    }

    let all_nan = vec![f64::NAN; 200];
    let edges = BinEdges::uniform(0.0, 1.0, 2).unwrap();
    let idx = BitmapIndex::build_with_edges(&all_nan, edges).unwrap();
    let mut buf = Vec::new();
    encode_index(&idx, &mut buf);
    let back = decode_index(&buf).unwrap();
    assert_eq!(back.unbinned_rows().len(), 200);
    assert!(!back.unbinned_matchable(), "NaN-only stays non-matchable");
    assert!(back.answers_exactly(&ValueRange::all()));
    let got = back.evaluate(&ValueRange::all(), &all_nan).unwrap();
    assert!(got.is_none_selected());
}

#[test]
fn id_index_and_zone_maps_roundtrip_with_duplicates_and_ties() {
    let mut rng = StdRng::seed_from_u64(31);
    let ids: Vec<u64> = (0..4000).map(|_| rng.gen_range(0..500u64)).collect();
    let idx = IdIndex::build(&ids);
    let mut buf = Vec::new();
    encode_id_index(&idx, &mut buf);
    let back = decode_id_index(&buf).unwrap();
    assert_eq!(back.pairs(), idx.pairs());
    let query: Vec<u64> = (0..600).step_by(7).collect();
    assert_eq!(back.select(&query).to_rows(), idx.select(&query).to_rows());

    let p = provider(1700, 9);
    for name in COLUMNS {
        for chunk_rows in [1usize, 64, 5000] {
            let maps = ZoneMaps::build(&p.columns[name], chunk_rows);
            let mut buf = Vec::new();
            encode_zone_maps(&maps, &mut buf);
            let back = decode_zone_maps(&buf).unwrap();
            assert_eq!(back, maps, "{name} at {chunk_rows} rows/chunk");
        }
    }
}

#[test]
fn hostile_index_bytes_never_panic() {
    // Every prefix of a real encoding and seeded random mutations of it must
    // fail with a typed error (or decode to an index that still answers
    // queries without panicking) — never abort.
    let p = provider(300, 3);
    let mut buf = Vec::new();
    encode_index(&p.indexes["c"], &mut buf);
    for cut in 0..buf.len() {
        assert!(decode_index(&buf[..cut]).is_err(), "prefix of {cut} bytes");
    }
    let mut rng = StdRng::seed_from_u64(99);
    let data = &p.columns["c"];
    for _ in 0..400 {
        let mut hostile = buf.clone();
        for _ in 0..rng.gen_range(1..8usize) {
            let at = rng.gen_range(0..hostile.len());
            hostile[at] = rng.gen_range(0..256usize) as u8;
        }
        if let Ok(idx) = decode_index(&hostile) {
            // Structurally valid by luck: evaluation must still be safe.
            if idx.num_rows() == data.len() {
                let _ = idx.evaluate(&ValueRange::gt(0.0), data);
            }
            let _ = idx.evaluate_index_only(&ValueRange::all());
            let _ = idx.bin_counts();
        }
    }
}
