//! Property suite for query normalization and the cache key the server (and
//! the compiled-plan cache) trust:
//!
//! * `normalized()` is a fixpoint — normalizing twice changes nothing — and
//!   preserves the selected row set exactly;
//! * `parse_query(expr.cache_key())` reconstructs the normalized expression,
//!   including deeply nested `Not`/`And`-inside-`Or` chains;
//! * two expressions sharing a `cache_key()` are semantically equal (their
//!   row sets agree on random data), and commutative/involution rewrites
//!   that *are* equivalent do share one key.

use std::collections::HashMap;

use fastbit::{
    evaluate_with_strategy, parse_query, ColumnProvider, ExecStrategy, Predicate, QueryExpr,
    ValueRange,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

struct MemProvider {
    columns: HashMap<String, Vec<f64>>,
    rows: usize,
}

impl ColumnProvider for MemProvider {
    fn num_rows(&self) -> usize {
        self.rows
    }
    fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns.get(name).map(|v| v.as_slice())
    }
    fn index(&self, _: &str) -> Option<&fastbit::BitmapIndex> {
        None
    }
}

const COLUMNS: [&str; 3] = ["a", "b", "c"];

fn provider(n: usize, seed: u64) -> MemProvider {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = HashMap::new();
    for name in COLUMNS {
        // A small value lattice so distinct predicates still overlap a lot.
        let data: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(-6..7) as f64) / 2.0)
            .collect();
        columns.insert(name.to_string(), data);
    }
    MemProvider { columns, rows: n }
}

fn random_range(rng: &mut StdRng) -> ValueRange {
    let bound = |rng: &mut StdRng| (rng.gen_range(-8..9) as f64) / 2.0;
    match rng.gen_range(0..5u32) {
        0 => ValueRange::gt(bound(rng)),
        1 => ValueRange::ge(bound(rng)),
        2 => ValueRange::lt(bound(rng)),
        3 => ValueRange::le(bound(rng)),
        _ => {
            let (x, y) = (bound(rng), bound(rng));
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            if rng.gen_range(0.0..1.0) < 0.5 {
                ValueRange::between(lo, hi)
            } else {
                ValueRange::between_inclusive(lo, hi)
            }
        }
    }
}

fn random_expr(rng: &mut StdRng, depth: usize) -> QueryExpr {
    if depth == 0 || rng.gen_range(0.0..1.0) < 0.35 {
        let column = COLUMNS[rng.gen_range(0..COLUMNS.len())];
        return QueryExpr::Pred(Predicate::new(column, random_range(rng)));
    }
    match rng.gen_range(0..3u32) {
        0 => QueryExpr::And(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        1 => QueryExpr::Or(
            (0..rng.gen_range(1..4usize))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        _ => random_expr(rng, depth - 1).not(),
    }
}

fn rows(expr: &QueryExpr, p: &MemProvider) -> Vec<usize> {
    evaluate_with_strategy(expr, p, ExecStrategy::ScanOnly)
        .unwrap()
        .to_rows()
}

#[test]
fn normalized_is_a_fixpoint_and_preserves_semantics() {
    let p = provider(800, 0xF1F0);
    let mut rng = StdRng::seed_from_u64(0xABCD);
    for round in 0..200 {
        let expr = random_expr(&mut rng, 4);
        let once = expr.normalized();
        let twice = once.normalized();
        assert_eq!(twice, once, "round {round}: not a fixpoint: {expr}");
        assert_eq!(
            twice.to_string(),
            once.to_string(),
            "round {round}: textual fixpoint: {expr}"
        );
        assert_eq!(
            rows(&once, &p),
            rows(&expr, &p),
            "round {round}: normalization changed the row set of {expr}"
        );
    }
}

#[test]
fn cache_key_parses_back_to_the_normalized_expression() {
    let mut rng = StdRng::seed_from_u64(0x9999);
    for round in 0..200 {
        let expr = random_expr(&mut rng, 4);
        let key = expr.cache_key();
        let reparsed = parse_query(&key)
            .unwrap_or_else(|e| panic!("round {round}: cache key `{key}` unparseable: {e}"));
        assert_eq!(
            reparsed,
            expr.normalized(),
            "round {round}: `{key}` did not round-trip"
        );
        assert_eq!(
            reparsed.cache_key(),
            key,
            "round {round}: key of key drifts"
        );
    }
}

#[test]
fn deeply_nested_not_and_or_chains_round_trip() {
    // The shape the issue calls out explicitly: alternating Not over
    // And-inside-Or, many levels deep, including n-ary combiners nested in
    // single-child combiners.
    let leaf = |c: &str, t: f64| QueryExpr::pred(c, ValueRange::gt(t));
    let mut expr = leaf("a", 0.0);
    for level in 0..12 {
        let t = level as f64;
        expr = QueryExpr::Or(vec![
            QueryExpr::And(vec![expr.clone(), leaf("b", t), leaf("c", -t)]).not(),
            QueryExpr::And(vec![QueryExpr::Or(vec![expr]), leaf("a", t + 0.5)]),
        ])
        .not();
    }
    let key = expr.cache_key();
    let reparsed = parse_query(&key).unwrap();
    assert_eq!(reparsed, expr.normalized());
    assert_eq!(reparsed.cache_key(), key);
    // Idempotence survives the depth too.
    assert_eq!(expr.normalized().normalized(), expr.normalized());
}

#[test]
fn equal_cache_keys_imply_equal_semantics() {
    let p = provider(600, 0x7777);
    let mut rng = StdRng::seed_from_u64(0x4242);
    let mut by_key: HashMap<String, (QueryExpr, Vec<usize>)> = HashMap::new();
    let mut collisions = 0;
    for _ in 0..300 {
        let expr = random_expr(&mut rng, 3);
        let key = expr.cache_key();
        let selected = rows(&expr, &p);
        if let Some((prior, prior_rows)) = by_key.get(&key) {
            collisions += 1;
            assert_eq!(
                &selected, prior_rows,
                "`{prior}` and `{expr}` share key `{key}` but select different rows"
            );
        } else {
            by_key.insert(key, (expr, selected));
        }
    }
    // With a small value lattice, some genuine re-draws must have occurred,
    // otherwise the property was never exercised.
    assert!(collisions > 0, "no shared keys in 300 draws");
}

#[test]
fn equivalent_rewrites_share_a_key_and_distinct_ranges_do_not() {
    let a = QueryExpr::pred("a", ValueRange::gt(1.0));
    let b = QueryExpr::pred("b", ValueRange::le(2.0));
    let c = QueryExpr::pred("c", ValueRange::between(0.0, 1.0));

    // Commutativity, associativity-flattening, double negation.
    assert_eq!(
        a.clone().and(b.clone()).cache_key(),
        b.clone().and(a.clone()).cache_key()
    );
    assert_eq!(
        QueryExpr::And(vec![a.clone(), QueryExpr::And(vec![b.clone(), c.clone()])]).cache_key(),
        QueryExpr::And(vec![a.clone(), b.clone(), c.clone()]).cache_key()
    );
    assert_eq!(a.clone().not().not().cache_key(), a.cache_key());
    assert_eq!(QueryExpr::Or(vec![a.clone()]).cache_key(), a.cache_key());

    // Near-miss ranges must all key differently: the four inclusivity
    // combinations of one interval are semantically distinct.
    let keys: Vec<String> = [(false, false), (true, false), (false, true), (true, true)]
        .into_iter()
        .map(|(min_inclusive, max_inclusive)| {
            QueryExpr::pred(
                "a",
                ValueRange {
                    min: Some(0.0),
                    min_inclusive,
                    max: Some(1.0),
                    max_inclusive,
                },
            )
            .cache_key()
        })
        .collect();
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j], "inclusivity lost in the key");
        }
    }
    // And/Or with the same children are distinct.
    assert_ne!(
        a.clone().and(b.clone()).cache_key(),
        a.clone().or(b.clone()).cache_key()
    );
    // Negation is distinct from the plain predicate.
    assert_ne!(a.clone().not().cache_key(), a.cache_key());
}
