//! Compound Boolean range queries.
//!
//! The parallel-coordinates interface of the paper builds queries such as
//! `px > 1e9 && py < 1e8 && y > 0` from per-axis sliders. This module models
//! those queries ([`ValueRange`], [`Predicate`], [`QueryExpr`]), provides a
//! parser for the textual form used throughout the paper, and evaluates
//! expressions either through bitmap indexes or by sequential scan depending
//! on what the [`ColumnProvider`] can supply.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{FastBitError, Result};
use crate::index::BitmapIndex;
use crate::selection::Selection;

/// A one-dimensional value range with optional, individually inclusive or
/// exclusive bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRange {
    /// Lower bound, if any.
    pub min: Option<f64>,
    /// Whether the lower bound itself is included.
    pub min_inclusive: bool,
    /// Upper bound, if any.
    pub max: Option<f64>,
    /// Whether the upper bound itself is included.
    pub max_inclusive: bool,
}

impl ValueRange {
    /// The unbounded range (matches every finite value).
    pub fn all() -> Self {
        Self {
            min: None,
            min_inclusive: false,
            max: None,
            max_inclusive: false,
        }
    }

    /// `value > threshold`.
    pub fn gt(threshold: f64) -> Self {
        Self {
            min: Some(threshold),
            min_inclusive: false,
            max: None,
            max_inclusive: false,
        }
    }

    /// `value >= threshold`.
    pub fn ge(threshold: f64) -> Self {
        Self {
            min: Some(threshold),
            min_inclusive: true,
            max: None,
            max_inclusive: false,
        }
    }

    /// `value < threshold`.
    pub fn lt(threshold: f64) -> Self {
        Self {
            min: None,
            min_inclusive: false,
            max: Some(threshold),
            max_inclusive: false,
        }
    }

    /// `value <= threshold`.
    pub fn le(threshold: f64) -> Self {
        Self {
            min: None,
            min_inclusive: false,
            max: Some(threshold),
            max_inclusive: true,
        }
    }

    /// `lo <= value < hi` — the half-open interval produced by axis sliders.
    pub fn between(lo: f64, hi: f64) -> Self {
        Self {
            min: Some(lo),
            min_inclusive: true,
            max: Some(hi),
            max_inclusive: false,
        }
    }

    /// `lo <= value <= hi`.
    pub fn between_inclusive(lo: f64, hi: f64) -> Self {
        Self {
            min: Some(lo),
            min_inclusive: true,
            max: Some(hi),
            max_inclusive: true,
        }
    }

    /// Whether `value` satisfies the range. NaN never matches.
    #[inline]
    pub fn contains(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        if let Some(lo) = self.min {
            if value < lo || (!self.min_inclusive && value == lo) {
                return false;
            }
        }
        if let Some(hi) = self.max {
            if value > hi || (!self.max_inclusive && value == hi) {
                return false;
            }
        }
        true
    }

    /// Whether the closed interval `[lo, hi]` is entirely inside the range.
    pub fn contains_interval(&self, lo: f64, hi: f64) -> bool {
        self.contains(lo) && self.contains(hi)
    }

    /// Whether the closed interval `[lo, hi]` intersects the range at all.
    pub fn overlaps_interval(&self, lo: f64, hi: f64) -> bool {
        if let Some(rmin) = self.min {
            if hi < rmin || (hi == rmin && !self.min_inclusive) {
                return false;
            }
        }
        if let Some(rmax) = self.max {
            if lo > rmax || (lo == rmax && !self.max_inclusive) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => write!(
                f,
                "{}{} , {}{}",
                if self.min_inclusive { "[" } else { "(" },
                lo,
                hi,
                if self.max_inclusive { "]" } else { ")" }
            ),
            (Some(lo), None) => write!(f, "{} {}", if self.min_inclusive { ">=" } else { ">" }, lo),
            (None, Some(hi)) => write!(f, "{} {}", if self.max_inclusive { "<=" } else { "<" }, hi),
            (None, None) => write!(f, "(-inf, +inf)"),
        }
    }
}

/// A range condition on a named column.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column (variable) name, e.g. `"px"`.
    pub column: String,
    /// Range the column value must fall in.
    pub range: ValueRange,
}

impl Predicate {
    /// Construct a predicate on `column` with `range`.
    pub fn new(column: impl Into<String>, range: ValueRange) -> Self {
        Self {
            column: column.into(),
            range,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.column, self.range)
    }
}

/// A compound Boolean combination of range predicates.
///
/// ```
/// use fastbit::{parse_query, QueryExpr, ValueRange};
///
/// // Build programmatically or parse the paper's textual form — both yield
/// // the same expression tree.
/// let built = QueryExpr::pred("px", ValueRange::gt(1e9))
///     .and(QueryExpr::pred("y", ValueRange::gt(0.0)));
/// let parsed = parse_query("px > 1e9 && y > 0").unwrap();
/// assert_eq!(built, parsed);
///
/// // Display round-trips through the parser, and normalization makes the
/// // cache key order-insensitive.
/// assert_eq!(parse_query(&parsed.to_string()).unwrap(), parsed);
/// let swapped = parse_query("y > 0 && px > 1e9").unwrap();
/// assert_eq!(parsed.cache_key(), swapped.cache_key());
///
/// // The referenced columns drive the pipeline's column-projection contract.
/// let columns: Vec<String> = parsed.columns().into_iter().collect();
/// assert_eq!(columns, vec!["px".to_string(), "y".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A single range condition.
    Pred(Predicate),
    /// Conjunction of sub-expressions.
    And(Vec<QueryExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<QueryExpr>),
    /// Negation of a sub-expression.
    Not(Box<QueryExpr>),
}

impl QueryExpr {
    /// Shortcut for a single predicate.
    pub fn pred(column: impl Into<String>, range: ValueRange) -> Self {
        QueryExpr::Pred(Predicate::new(column, range))
    }

    /// Conjunction of this expression with `other`.
    pub fn and(self, other: QueryExpr) -> Self {
        match self {
            QueryExpr::And(mut v) => {
                v.push(other);
                QueryExpr::And(v)
            }
            e => QueryExpr::And(vec![e, other]),
        }
    }

    /// Disjunction of this expression with `other`.
    pub fn or(self, other: QueryExpr) -> Self {
        match self {
            QueryExpr::Or(mut v) => {
                v.push(other);
                QueryExpr::Or(v)
            }
            e => QueryExpr::Or(vec![e, other]),
        }
    }

    /// Negation of this expression.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        QueryExpr::Not(Box::new(self))
    }

    /// A canonical form of the expression suitable for cache keying:
    /// nested `And(And(..))` / `Or(Or(..))` chains are flattened, double
    /// negation is collapsed, single-child conjunctions/disjunctions are
    /// unwrapped, and sibling sub-expressions are sorted by their textual
    /// form so that `a && b` and `b && a` normalize identically.
    ///
    /// Normalization only applies transformations that preserve the exact
    /// row set the expression selects.
    pub fn normalized(&self) -> QueryExpr {
        fn flatten_into(kind_and: bool, e: QueryExpr, out: &mut Vec<QueryExpr>) {
            match (kind_and, e) {
                (true, QueryExpr::And(v)) | (false, QueryExpr::Or(v)) => out.extend(v),
                (_, other) => out.push(other),
            }
        }
        match self {
            QueryExpr::Pred(p) => QueryExpr::Pred(p.clone()),
            QueryExpr::And(v) | QueryExpr::Or(v) => {
                let is_and = matches!(self, QueryExpr::And(_));
                let mut flat = Vec::with_capacity(v.len());
                for e in v {
                    flatten_into(is_and, e.normalized(), &mut flat);
                }
                if flat.len() == 1 {
                    return flat.pop().expect("one element");
                }
                flat.sort_by_cached_key(|e| e.to_string());
                if is_and {
                    QueryExpr::And(flat)
                } else {
                    QueryExpr::Or(flat)
                }
            }
            QueryExpr::Not(e) => match e.normalized() {
                QueryExpr::Not(inner) => *inner,
                other => QueryExpr::Not(Box::new(other)),
            },
        }
    }

    /// The canonical textual key of this expression: the [`fmt::Display`]
    /// form of [`QueryExpr::normalized`]. Two expressions that normalize to
    /// the same shape share one key, which is what the server's query cache
    /// keys memoized results on (together with the timestep). The key is
    /// parseable: `parse_query(&expr.cache_key())` reconstructs the
    /// normalized expression.
    pub fn cache_key(&self) -> String {
        self.normalized().to_string()
    }

    /// The set of columns referenced anywhere in the expression. This is what
    /// the pipeline's contract mechanism pushes upstream so the reader only
    /// touches the columns it truly needs.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            QueryExpr::Pred(p) => {
                out.insert(p.column.clone());
            }
            QueryExpr::And(v) | QueryExpr::Or(v) => {
                for e in v {
                    e.collect_columns(out);
                }
            }
            QueryExpr::Not(e) => e.collect_columns(out),
        }
    }

    /// Evaluate the expression row-by-row against raw columns only.
    pub fn matches_row(&self, provider: &impl ColumnProvider, row: usize) -> Result<bool> {
        match self {
            QueryExpr::Pred(p) => {
                let col = provider
                    .column(&p.column)
                    .ok_or_else(|| FastBitError::UnknownColumn(p.column.clone()))?;
                Ok(p.range.contains(col[row]))
            }
            QueryExpr::And(v) => {
                for e in v {
                    if !e.matches_row(provider, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            QueryExpr::Or(v) => {
                for e in v {
                    if e.matches_row(provider, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            QueryExpr::Not(e) => Ok(!e.matches_row(provider, row)?),
        }
    }
}

impl fmt::Display for QueryExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_impl(f)
    }
}

impl QueryExpr {
    fn fmt_impl(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryExpr::Pred(p) => write!(f, "{p}"),
            QueryExpr::And(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    e.fmt_impl(f)?;
                }
                write!(f, ")")
            }
            QueryExpr::Or(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    e.fmt_impl(f)?;
                }
                write!(f, ")")
            }
            QueryExpr::Not(e) => {
                write!(f, "!(")?;
                e.fmt_impl(f)?;
                write!(f, ")")
            }
        }
    }
}

/// Access to the columns and (optionally) indexes of one dataset.
///
/// This is the implementation-neutral interface mirroring HDF5-FastQuery: the
/// evaluator asks for whatever combination of raw data and index a column
/// offers and picks the cheapest exact strategy.
pub trait ColumnProvider {
    /// Number of rows in the dataset.
    fn num_rows(&self) -> usize;
    /// Raw values of a column, when available in memory.
    fn column(&self, name: &str) -> Option<&[f64]>;
    /// Bitmap index of a column, when one has been built.
    fn index(&self, name: &str) -> Option<&BitmapIndex>;
    /// Per-chunk zone maps of a column at the given chunk size, when the
    /// provider keeps them (see [`crate::par::ZoneMaps`]). The chunked
    /// evaluator falls back to computing zones on the fly when this returns
    /// `None`, so implementing it is purely an optimization.
    fn zone_maps(
        &self,
        _name: &str,
        _chunk_rows: usize,
    ) -> Option<std::sync::Arc<crate::par::ZoneMaps>> {
        None
    }
}

/// How a query should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Use bitmap indexes where available, falling back to scans.
    Auto,
    /// Force index-based evaluation; error when an index is missing.
    IndexOnly,
    /// Force sequential scans even when indexes exist (the "Custom" baseline).
    ScanOnly,
}

/// Evaluate `expr` over `provider` with the given strategy.
pub fn evaluate_with_strategy(
    expr: &QueryExpr,
    provider: &impl ColumnProvider,
    strategy: ExecStrategy,
) -> Result<Selection> {
    match expr {
        QueryExpr::Pred(p) => evaluate_predicate(p, provider, strategy),
        QueryExpr::And(v) => {
            let mut acc: Option<Selection> = None;
            for e in v {
                let s = evaluate_with_strategy(e, provider, strategy)?;
                acc = Some(match acc {
                    None => s,
                    Some(prev) => prev.and(&s)?,
                });
            }
            Ok(acc.unwrap_or_else(|| Selection::all(provider.num_rows())))
        }
        QueryExpr::Or(v) => {
            let mut acc: Option<Selection> = None;
            for e in v {
                let s = evaluate_with_strategy(e, provider, strategy)?;
                acc = Some(match acc {
                    None => s,
                    Some(prev) => prev.or(&s)?,
                });
            }
            Ok(acc.unwrap_or_else(|| Selection::none(provider.num_rows())))
        }
        QueryExpr::Not(e) => Ok(evaluate_with_strategy(e, provider, strategy)?.not()),
    }
}

/// Evaluate `expr` over `provider`, preferring indexes when they exist.
pub fn evaluate(expr: &QueryExpr, provider: &impl ColumnProvider) -> Result<Selection> {
    evaluate_with_strategy(expr, provider, ExecStrategy::Auto)
}

pub(crate) fn evaluate_predicate(
    pred: &Predicate,
    provider: &impl ColumnProvider,
    strategy: ExecStrategy,
) -> Result<Selection> {
    let data = provider.column(&pred.column);
    let index = provider.index(&pred.column);
    match strategy {
        ExecStrategy::ScanOnly => {
            let data = data.ok_or_else(|| FastBitError::UnknownColumn(pred.column.clone()))?;
            Ok(Selection::from_predicate(data, |&v| pred.range.contains(v)))
        }
        ExecStrategy::IndexOnly => {
            let index = index.ok_or_else(|| {
                FastBitError::RawDataRequired(format!("no index for column {}", pred.column))
            })?;
            match data {
                Some(data) => index.evaluate(&pred.range, data),
                None => {
                    // Without raw data the best exact answer requires that the
                    // range align with bin boundaries.
                    if index.answers_exactly(&pred.range) {
                        let (hits, _) = index.evaluate_index_only(&pred.range)?;
                        Ok(hits)
                    } else {
                        Err(FastBitError::RawDataRequired(format!(
                            "candidate check for column {}",
                            pred.column
                        )))
                    }
                }
            }
        }
        ExecStrategy::Auto => match (index, data) {
            (Some(index), Some(data)) => index.evaluate(&pred.range, data),
            (Some(index), None) if index.answers_exactly(&pred.range) => {
                let (hits, _) = index.evaluate_index_only(&pred.range)?;
                Ok(hits)
            }
            (_, Some(data)) => Ok(Selection::from_predicate(data, |&v| pred.range.contains(v))),
            _ => Err(FastBitError::UnknownColumn(pred.column.clone())),
        },
    }
}

// ---------------------------------------------------------------------------
// Query string parser
// ---------------------------------------------------------------------------

/// Parse a paper-style query string such as
/// `px > 8.872e10 && (y > 0 || z <= 1e-3) && !(id < 100)`.
///
/// Supported syntax: comparisons `<ident> (< | <= | > | >= | ==) <number>`
/// (or with the operands flipped), combined with `&&`, `||`, `!` and
/// parentheses.
pub fn parse_query(input: &str) -> Result<QueryExpr> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(FastBitError::Parse(format!(
            "unexpected trailing input near token {:?}",
            parser.tokens[parser.pos]
        )));
    }
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    AndAnd,
    OrOr,
    Not,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
}

/// Whether `chars[at..]` spells exactly the keyword `inf` (and not the prefix
/// of a longer identifier such as `infra`).
fn signed_infinity_at(chars: &[char], at: usize) -> bool {
    chars[at..].starts_with(&['i', 'n', 'f'])
        && !matches!(chars.get(at + 3), Some(c) if c.is_ascii_alphanumeric() || *c == '_')
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(FastBitError::Parse("expected '&&'".into()));
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(FastBitError::Parse("expected '||'".into()));
                }
            }
            '!' => {
                tokens.push(Token::Not);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Eq);
                    i += 2;
                } else {
                    return Err(FastBitError::Parse("expected '=='".into()));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // `inf` is reserved as the infinity literal of the interval
                // syntax (`px (-inf , 3]`), not a column name.
                if ident == "inf" {
                    tokens.push(Token::Number(f64::INFINITY));
                } else {
                    tokens.push(Token::Ident(ident));
                }
            }
            '-' | '+' if signed_infinity_at(&chars, i + 1) => {
                tokens.push(Token::Number(if c == '-' {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }));
                i += 4;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '-' || chars[i] == '+')
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse::<f64>()
                    .map_err(|_| FastBitError::Parse(format!("bad number literal '{text}'")))?;
                tokens.push(Token::Number(value));
            }
            other => {
                return Err(FastBitError::Parse(format!(
                    "unexpected character '{other}'"
                )));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    // The chain parsers accumulate children explicitly instead of going
    // through `QueryExpr::or`/`QueryExpr::and`: those constructors flatten
    // an `And`/`Or` left operand, which would silently merge a parenthesized
    // sub-expression into its parent chain and break the
    // `parse(display(expr)) == expr` invariant the query cache relies on
    // (`((a && b) && c)` must stay structurally distinct from
    // `(a && b && c)`).
    fn parse_or(&mut self) -> Result<QueryExpr> {
        let first = self.parse_and()?;
        if self.peek() != Some(&Token::OrOr) {
            return Ok(first);
        }
        let mut children = vec![first];
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            children.push(self.parse_and()?);
        }
        Ok(QueryExpr::Or(children))
    }

    fn parse_and(&mut self) -> Result<QueryExpr> {
        let first = self.parse_unary()?;
        if self.peek() != Some(&Token::AndAnd) {
            return Ok(first);
        }
        let mut children = vec![first];
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            children.push(self.parse_unary()?);
        }
        Ok(QueryExpr::And(children))
    }

    fn parse_unary(&mut self) -> Result<QueryExpr> {
        match self.peek() {
            Some(Token::Not) => {
                self.bump();
                Ok(self.parse_unary()?.not())
            }
            Some(Token::LParen) => {
                self.bump();
                let inner = self.parse_or()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(FastBitError::Parse("expected ')'".into())),
                }
            }
            _ => self.parse_comparison(),
        }
    }

    /// `col [lo , hi)` — the interval form `Display` emits for
    /// double-bounded ranges. `[`/`]` mean inclusive, `(`/`)` exclusive,
    /// and `-inf`/`+inf` stand for a missing bound, so every `ValueRange`
    /// (including `ValueRange::all()`, printed `(-inf, +inf)`) roundtrips.
    fn parse_interval(&mut self, column: String) -> Result<QueryExpr> {
        let min_inclusive = match self.bump() {
            Some(Token::LBracket) => true,
            Some(Token::LParen) => false,
            other => {
                return Err(FastBitError::Parse(format!(
                    "expected '[' or '(': {other:?}"
                )))
            }
        };
        let lo = match self.bump() {
            Some(Token::Number(v)) => v,
            other => {
                return Err(FastBitError::Parse(format!(
                    "expected interval lower bound: {other:?}"
                )))
            }
        };
        if self.bump() != Some(Token::Comma) {
            return Err(FastBitError::Parse("expected ',' in interval".into()));
        }
        let hi = match self.bump() {
            Some(Token::Number(v)) => v,
            other => {
                return Err(FastBitError::Parse(format!(
                    "expected interval upper bound: {other:?}"
                )))
            }
        };
        let max_inclusive = match self.bump() {
            Some(Token::RBracket) => true,
            Some(Token::RParen) => false,
            other => {
                return Err(FastBitError::Parse(format!(
                    "expected ']' or ')': {other:?}"
                )))
            }
        };
        let (min, min_inclusive) = if lo == f64::NEG_INFINITY {
            (None, false)
        } else {
            (Some(lo), min_inclusive)
        };
        let (max, max_inclusive) = if hi == f64::INFINITY {
            (None, false)
        } else {
            (Some(hi), max_inclusive)
        };
        Ok(QueryExpr::pred(
            column,
            ValueRange {
                min,
                min_inclusive,
                max,
                max_inclusive,
            },
        ))
    }

    fn parse_comparison(&mut self) -> Result<QueryExpr> {
        let lhs = self
            .bump()
            .ok_or_else(|| FastBitError::Parse("unexpected end of query".into()))?;
        if let Token::Ident(column) = &lhs {
            if matches!(self.peek(), Some(Token::LBracket) | Some(Token::LParen)) {
                return self.parse_interval(column.clone());
            }
        }
        let op = self
            .bump()
            .ok_or_else(|| FastBitError::Parse("expected comparison operator".into()))?;
        let rhs = self
            .bump()
            .ok_or_else(|| FastBitError::Parse("expected comparison operand".into()))?;
        match (lhs, op, rhs) {
            (Token::Ident(col), op, Token::Number(v)) => {
                let range = match op {
                    Token::Gt => ValueRange::gt(v),
                    Token::Ge => ValueRange::ge(v),
                    Token::Lt => ValueRange::lt(v),
                    Token::Le => ValueRange::le(v),
                    Token::Eq => ValueRange::between_inclusive(v, v),
                    other => return Err(FastBitError::Parse(format!("bad operator {other:?}"))),
                };
                Ok(QueryExpr::pred(col, range))
            }
            (Token::Number(v), op, Token::Ident(col)) => {
                // `1e9 < px` is the same as `px > 1e9`.
                let range = match op {
                    Token::Gt => ValueRange::lt(v),
                    Token::Ge => ValueRange::le(v),
                    Token::Lt => ValueRange::gt(v),
                    Token::Le => ValueRange::ge(v),
                    Token::Eq => ValueRange::between_inclusive(v, v),
                    other => return Err(FastBitError::Parse(format!("bad operator {other:?}"))),
                };
                Ok(QueryExpr::pred(col, range))
            }
            (l, o, r) => Err(FastBitError::Parse(format!(
                "malformed comparison: {l:?} {o:?} {r:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histogram::Binning;
    use std::collections::HashMap;

    struct MemProvider {
        columns: HashMap<String, Vec<f64>>,
        indexes: HashMap<String, BitmapIndex>,
        rows: usize,
    }

    impl MemProvider {
        fn new(columns: Vec<(&str, Vec<f64>)>, index_bins: Option<usize>) -> Self {
            let rows = columns[0].1.len();
            let mut map = HashMap::new();
            let mut indexes = HashMap::new();
            for (name, data) in columns {
                if let Some(bins) = index_bins {
                    indexes.insert(
                        name.to_string(),
                        BitmapIndex::build(&data, &Binning::EqualWidth { bins }).unwrap(),
                    );
                }
                map.insert(name.to_string(), data);
            }
            Self {
                columns: map,
                indexes,
                rows,
            }
        }
    }

    impl ColumnProvider for MemProvider {
        fn num_rows(&self) -> usize {
            self.rows
        }
        fn column(&self, name: &str) -> Option<&[f64]> {
            self.columns.get(name).map(|v| v.as_slice())
        }
        fn index(&self, name: &str) -> Option<&BitmapIndex> {
            self.indexes.get(name)
        }
    }

    fn provider(indexed: bool) -> MemProvider {
        let n = 1000;
        let px: Vec<f64> = (0..n).map(|i| i as f64 * 1e8).collect();
        let py: Vec<f64> = (0..n).map(|i| ((i * 7) % n) as f64 * 1e7).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64) - 500.0).collect();
        MemProvider::new(
            vec![("px", px), ("py", py), ("y", y)],
            if indexed { Some(64) } else { None },
        )
    }

    #[test]
    fn value_range_semantics() {
        assert!(ValueRange::gt(1.0).contains(1.5));
        assert!(!ValueRange::gt(1.0).contains(1.0));
        assert!(ValueRange::ge(1.0).contains(1.0));
        assert!(ValueRange::lt(1.0).contains(0.5));
        assert!(!ValueRange::lt(1.0).contains(1.0));
        assert!(ValueRange::le(1.0).contains(1.0));
        assert!(ValueRange::between(0.0, 1.0).contains(0.0));
        assert!(!ValueRange::between(0.0, 1.0).contains(1.0));
        assert!(ValueRange::between_inclusive(0.0, 1.0).contains(1.0));
        assert!(!ValueRange::all().contains(f64::NAN));
        assert!(ValueRange::all().contains(-1e300));
    }

    #[test]
    fn interval_relations() {
        let r = ValueRange::between(0.0, 10.0);
        assert!(r.contains_interval(1.0, 9.0));
        assert!(!r.contains_interval(-1.0, 9.0));
        assert!(r.overlaps_interval(-5.0, 0.5));
        assert!(r.overlaps_interval(9.0, 20.0));
        assert!(!r.overlaps_interval(10.0, 20.0), "half-open upper bound");
        assert!(!r.overlaps_interval(-5.0, -1.0));
    }

    #[test]
    fn compound_query_matches_paper_example() {
        // px > 1e9 && py < 1e8 && y > 0 — the example from Section III-B.
        let p = provider(true);
        let expr = QueryExpr::pred("px", ValueRange::gt(1e9))
            .and(QueryExpr::pred("py", ValueRange::lt(1e8)))
            .and(QueryExpr::pred("y", ValueRange::gt(0.0)));
        let indexed = evaluate(&expr, &p).unwrap();
        let scanned = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
        assert_eq!(indexed.to_rows(), scanned.to_rows());
        assert!(indexed.count() > 0);
        // Manual check of a few rows.
        for row in indexed.iter_rows().take(5) {
            assert!(p.column("px").unwrap()[row] > 1e9);
            assert!(p.column("py").unwrap()[row] < 1e8);
            assert!(p.column("y").unwrap()[row] > 0.0);
        }
    }

    #[test]
    fn or_and_not_evaluate_correctly() {
        let p = provider(false);
        let expr = QueryExpr::pred("y", ValueRange::lt(-400.0))
            .or(QueryExpr::pred("y", ValueRange::gt(400.0)));
        let sel = evaluate(&expr, &p).unwrap();
        assert_eq!(sel.count(), 100 + 99);
        let inverted = evaluate(&expr.clone().not(), &p).unwrap();
        assert_eq!(inverted.count() + sel.count(), 1000);
    }

    #[test]
    fn missing_column_is_reported() {
        let p = provider(false);
        let expr = QueryExpr::pred("nope", ValueRange::gt(0.0));
        assert!(matches!(
            evaluate(&expr, &p),
            Err(FastBitError::UnknownColumn(_))
        ));
    }

    #[test]
    fn index_only_strategy_requires_index() {
        let p = provider(false);
        let expr = QueryExpr::pred("px", ValueRange::gt(1e9));
        assert!(evaluate_with_strategy(&expr, &p, ExecStrategy::IndexOnly).is_err());
        let p = provider(true);
        let sel = evaluate_with_strategy(&expr, &p, ExecStrategy::IndexOnly).unwrap();
        let scan = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
        assert_eq!(sel.to_rows(), scan.to_rows());
    }

    #[test]
    fn columns_are_collected_for_contracts() {
        let expr = parse_query("px > 1e9 && (py < 1e8 || y > 0) && !(px <= 2e9)").unwrap();
        let cols: Vec<String> = expr.columns().into_iter().collect();
        assert_eq!(
            cols,
            vec!["px".to_string(), "py".to_string(), "y".to_string()]
        );
    }

    #[test]
    fn matches_row_agrees_with_selection() {
        let p = provider(false);
        let expr = parse_query("px > 5e10 && y <= 100").unwrap();
        let sel = evaluate(&expr, &p).unwrap();
        for row in 0..p.num_rows() {
            assert_eq!(
                expr.matches_row(&p, row).unwrap(),
                sel.to_rows().contains(&row)
            );
        }
    }

    #[test]
    fn parser_handles_paper_queries() {
        let e = parse_query("px > 8.872e10").unwrap();
        assert_eq!(e, QueryExpr::pred("px", ValueRange::gt(8.872e10)));

        let e = parse_query("px >  4.856e10 && x > 5.649e-4").unwrap();
        match e {
            QueryExpr::And(v) => assert_eq!(v.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }

        let e = parse_query("1e9 < px").unwrap();
        assert_eq!(e, QueryExpr::pred("px", ValueRange::gt(1e9)));

        let e = parse_query("pressure <= 1e-5 || momentum >= 2.5e8").unwrap();
        assert!(matches!(e, QueryExpr::Or(_)));

        assert!(parse_query("px >").is_err());
        assert!(parse_query("px ?? 3").is_err());
        assert!(parse_query("px > 1e9 extra").is_err());
        assert!(parse_query("px > abc").is_err());
    }

    #[test]
    fn parser_handles_interval_syntax() {
        assert_eq!(
            parse_query("px [0 , 1)").unwrap(),
            QueryExpr::pred("px", ValueRange::between(0.0, 1.0))
        );
        assert_eq!(
            parse_query("px (-inf, +inf)").unwrap(),
            QueryExpr::pred("px", ValueRange::all())
        );
        assert_eq!(
            parse_query("px [2 , 2]").unwrap(),
            QueryExpr::pred("px", ValueRange::between_inclusive(2.0, 2.0))
        );
        assert_eq!(
            parse_query("x (-1e-3 , 4.5]").unwrap(),
            QueryExpr::pred(
                "x",
                ValueRange {
                    min: Some(-1e-3),
                    min_inclusive: false,
                    max: Some(4.5),
                    max_inclusive: true,
                }
            )
        );
        assert!(parse_query("px [0 ,").is_err());
        assert!(parse_query("px [0 1)").is_err());
        assert!(parse_query("px [0 , 1").is_err());
    }

    #[test]
    fn normalization_flattens_sorts_and_collapses() {
        let e = parse_query("(px > 1 && (y > 2 && z > 3))").unwrap();
        match e.normalized() {
            QueryExpr::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
        let a = parse_query("px > 1 || y > 2").unwrap();
        let b = parse_query("y > 2 || px > 1").unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        let nn = parse_query("!(!(px > 1))").unwrap();
        assert_eq!(nn.normalized(), parse_query("px > 1").unwrap());
    }

    #[test]
    fn every_value_range_display_form_parses_back() {
        for range in [
            ValueRange::all(),
            ValueRange::gt(1.5),
            ValueRange::ge(-2.0),
            ValueRange::lt(1e30),
            ValueRange::le(0.0),
            ValueRange::between(-1.0, 1.0),
            ValueRange::between_inclusive(3.0, 4.0),
        ] {
            let expr = QueryExpr::pred("px", range);
            let text = expr.to_string();
            assert_eq!(parse_query(&text).unwrap(), expr, "from {text:?}");
        }
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let e = parse_query("px > 1e9 && !(py < 1e8 || y >= 0)").unwrap();
        let text = format!("{e}");
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(e, reparsed);
    }
}
