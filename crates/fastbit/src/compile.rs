//! Query compilation: from a [`QueryExpr`] tree to a linear bytecode program.
//!
//! Both engines used to tree-walk the expression per evaluation (the chunked
//! engine per *chunk*), re-dispatching on node kind and re-deriving planner
//! decisions — index-vs-scan, equality-vs-range encoding, zone-map pruning —
//! at every node. Deep compound drill-down queries, exactly the workload the
//! paper's interactive exploration loop produces, pay that dispatch cost over
//! and over.
//!
//! [`Program::compile`] normalizes the expression once
//! ([`QueryExpr::normalized`]) and lowers it to a small linear program:
//!
//! * a **slot table** of the distinct predicates (textually identical
//!   predicates share one slot, so common subexpressions are evaluated once);
//! * a **register machine** of AND/OR/NOT ops over bit-mask registers;
//! * a **root** describing how the final selection is produced.
//!
//! Planner decisions are bound per dataset by [`Program::plan`], which
//! resolves every slot to a [`PredSource`] — raw scan (optionally guarded by
//! zone-map pruning) or bitmap-index answer under a cost-selected encoding —
//! and is rendered by the deterministic plan printer ([`Program::explain`])
//! so planner choices are snapshot-testable.
//!
//! Execution is fused and word-at-a-time: [`execute`] materializes each slot
//! as a dense `u64` bitmap (scan kernels fill words directly, index answers
//! are expanded in bulk) and interprets the ops as tight word loops, emitting
//! one WAH selection at the end. The determinism invariant, pinned by
//! `tests/compile_differential.rs`, is that the compiled engine selects the
//! same rows as the tree-walk evaluator and — for normalized expressions —
//! emits bit-identical WAH words. Programs are cached by
//! [`QueryExpr::cache_key`] in a [`PlanCache`].

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{FastBitError, Result};
use crate::index::IndexEncoding;
use crate::par::DEFAULT_CHUNK_ROWS;
use crate::query::{evaluate_predicate, ColumnProvider, ExecStrategy, Predicate, QueryExpr};
use crate::selection::Selection;
use crate::wah::{Wah, WahBuilder};

// ---------------------------------------------------------------------------
// Bytecode
// ---------------------------------------------------------------------------

/// One instruction of a compiled query program. Registers and slots are
/// dense small indexes (`u16`), so a deep compound expression compiles to a
/// few dozen bytes of bytecode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCode {
    /// `r[dst] = slots[slot]` — materialize a predicate answer.
    Load {
        /// Destination register.
        dst: u16,
        /// Predicate slot to load.
        slot: u16,
    },
    /// `r[dst] = all-ones / all-zeros` (empty `And`/`Or` operands).
    LoadConst {
        /// Destination register.
        dst: u16,
        /// `true` for all rows selected, `false` for none.
        ones: bool,
    },
    /// `r[dst] &= r[src]`; `src` is dead afterwards.
    AndReg {
        /// Destination (and left operand) register.
        dst: u16,
        /// Right operand register, freed by this op.
        src: u16,
    },
    /// `r[dst] &= slots[slot]` — fused: the predicate answer is combined
    /// without an intermediate register.
    AndSlot {
        /// Destination (and left operand) register.
        dst: u16,
        /// Predicate slot of the right operand.
        slot: u16,
    },
    /// `r[dst] |= r[src]`; `src` is dead afterwards.
    OrReg {
        /// Destination (and left operand) register.
        dst: u16,
        /// Right operand register, freed by this op.
        src: u16,
    },
    /// `r[dst] |= slots[slot]`.
    OrSlot {
        /// Destination (and left operand) register.
        dst: u16,
        /// Predicate slot of the right operand.
        slot: u16,
    },
    /// `r[dst] = !r[dst]` (complement over the covered rows).
    Not {
        /// Register complemented in place.
        dst: u16,
    },
}

impl std::fmt::Display for OpCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            OpCode::Load { dst, slot } => write!(f, "r{dst} = load s{slot}"),
            OpCode::LoadConst { dst, ones } => {
                write!(f, "r{dst} = const {}", if ones { "all" } else { "none" })
            }
            OpCode::AndReg { dst, src } => write!(f, "r{dst} &= r{src}"),
            OpCode::AndSlot { dst, slot } => write!(f, "r{dst} &= s{slot}"),
            OpCode::OrReg { dst, src } => write!(f, "r{dst} |= r{src}"),
            OpCode::OrSlot { dst, slot } => write!(f, "r{dst} |= s{slot}"),
            OpCode::Not { dst } => write!(f, "r{dst} = !r{dst}"),
        }
    }
}

/// How the final selection of a program is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Root {
    /// The program is a single predicate; its slot answer *is* the result.
    Pred(u16),
    /// The program is constant (an empty `And` selects all rows, an empty
    /// `Or` selects none).
    Const(bool),
    /// The result is the named register after running the op list.
    Ops {
        /// Register holding the final mask.
        result: u16,
    },
}

// ---------------------------------------------------------------------------
// Planner decisions
// ---------------------------------------------------------------------------

/// How a predicate slot is answered against a concrete dataset — the planner
/// decision previously re-derived inside `query.rs` / `par.rs` per
/// evaluation, now bound once per plan and visible to the plan printer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredSource {
    /// Scan the raw column row-by-row.
    Scan {
        /// Whether a zone-map prune guard is armed: chunks proven all-match
        /// or no-match by their zone are filled without touching rows.
        pruned: bool,
    },
    /// Answer through the column's bitmap index.
    Index {
        /// Encoding chosen by the per-query cost model
        /// ([`crate::BitmapIndex::choose_encoding`]).
        encoding: IndexEncoding,
        /// `true` when the binned bitmaps answer exactly; `false` when
        /// boundary bins / unbinned rows need a candidate check against the
        /// raw column.
        exact: bool,
    },
}

impl std::fmt::Display for PredSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PredSource::Scan { pruned: true } => write!(f, "scan (zone-pruned)"),
            PredSource::Scan { pruned: false } => write!(f, "scan"),
            PredSource::Index { encoding, exact } => {
                let enc = match encoding {
                    IndexEncoding::Equality => "equality",
                    IndexEncoding::Range => "range",
                };
                let check = if exact { "exact" } else { "candidate-check" };
                write!(f, "index (encoding={enc}, {check})")
            }
        }
    }
}

/// Which engine a plan is bound for; determines the per-slot source rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// The sequential engine under an [`ExecStrategy`].
    Sequential(ExecStrategy),
    /// The chunked parallel engine.
    Chunked {
        /// Zone-map pruning enabled ([`crate::ParExec::pruning`]).
        pruning: bool,
        /// Bitmap-index acceleration enabled
        /// ([`crate::ParExec::with_index_acceleration`]).
        index_accel: bool,
    },
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlanMode::Sequential(s) => {
                let s = match s {
                    ExecStrategy::Auto => "auto",
                    ExecStrategy::IndexOnly => "index-only",
                    ExecStrategy::ScanOnly => "scan-only",
                };
                write!(f, "sequential({s})")
            }
            PlanMode::Chunked {
                pruning,
                index_accel,
            } => {
                write!(
                    f,
                    "chunked(pruning={}, index-accel={})",
                    if pruning { "on" } else { "off" },
                    if index_accel { "on" } else { "off" }
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/// A compiled query: the normalized expression lowered to a slot table of
/// distinct predicates plus a linear register program. Provider-independent
/// (planner decisions are bound later by [`Program::plan`]), so one program
/// is valid for every dataset and is cached by [`QueryExpr::cache_key`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    expr: QueryExpr,
    key: String,
    slots: Vec<Predicate>,
    ops: Vec<OpCode>,
    num_regs: usize,
    root: Root,
}

/// Intermediate value during compilation: a predicate slot, a constant, or a
/// register holding a partial result.
enum Val {
    Slot(u16),
    Const(bool),
    Reg(u16),
}

struct Compiler {
    slots: Vec<Predicate>,
    slot_by_key: HashMap<String, u16>,
    ops: Vec<OpCode>,
    free: Vec<u16>,
    num_regs: u16,
}

impl Compiler {
    fn intern(&mut self, pred: &Predicate) -> u16 {
        let key = pred.to_string();
        if let Some(&slot) = self.slot_by_key.get(&key) {
            return slot;
        }
        let slot = self.slots.len() as u16;
        self.slots.push(pred.clone());
        self.slot_by_key.insert(key, slot);
        slot
    }

    fn alloc(&mut self) -> u16 {
        if let Some(r) = self.free.pop() {
            return r;
        }
        let r = self.num_regs;
        self.num_regs += 1;
        r
    }

    fn reg_of(&mut self, v: Val) -> u16 {
        match v {
            Val::Reg(r) => r,
            Val::Slot(slot) => {
                let dst = self.alloc();
                self.ops.push(OpCode::Load { dst, slot });
                dst
            }
            Val::Const(ones) => {
                let dst = self.alloc();
                self.ops.push(OpCode::LoadConst { dst, ones });
                dst
            }
        }
    }

    fn emit(&mut self, expr: &QueryExpr) -> Val {
        match expr {
            QueryExpr::Pred(p) => Val::Slot(self.intern(p)),
            QueryExpr::Not(inner) => {
                let v = self.emit(inner);
                let dst = self.reg_of(v);
                self.ops.push(OpCode::Not { dst });
                Val::Reg(dst)
            }
            QueryExpr::And(children) => self.emit_nary(children, true),
            QueryExpr::Or(children) => self.emit_nary(children, false),
        }
    }

    /// Lower an n-ary And/Or. Children fold left into the first child's
    /// register; predicate operands fuse as `AndSlot`/`OrSlot` without a
    /// `Load`. Empty combiners become constants (the tree-walk semantics:
    /// `And([])` selects everything, `Or([])` nothing).
    fn emit_nary(&mut self, children: &[QueryExpr], is_and: bool) -> Val {
        if children.is_empty() {
            return Val::Const(is_and);
        }
        let mut acc: Option<u16> = None;
        for child in children {
            let v = self.emit(child);
            match acc {
                None => {
                    if children.len() == 1 {
                        // Single-child combiners pass straight through (the
                        // normalizer unwraps them; this keeps raw trees sane).
                        return v;
                    }
                    acc = Some(self.reg_of(v));
                }
                Some(dst) => match v {
                    Val::Slot(slot) => self.ops.push(if is_and {
                        OpCode::AndSlot { dst, slot }
                    } else {
                        OpCode::OrSlot { dst, slot }
                    }),
                    other => {
                        let src = self.reg_of(other);
                        self.ops.push(if is_and {
                            OpCode::AndReg { dst, src }
                        } else {
                            OpCode::OrReg { dst, src }
                        });
                        self.free.push(src);
                    }
                },
            }
        }
        Val::Reg(acc.expect("non-empty combiner"))
    }
}

impl Program {
    /// Compile `expr`: normalize it, intern its distinct predicates and
    /// lower the Boolean structure to linear bytecode.
    pub fn compile(expr: &QueryExpr) -> Program {
        let normalized = expr.normalized();
        let key = normalized.to_string();
        let mut c = Compiler {
            slots: Vec::new(),
            slot_by_key: HashMap::new(),
            ops: Vec::new(),
            free: Vec::new(),
            num_regs: 0,
        };
        let root = match c.emit(&normalized) {
            Val::Slot(s) => Root::Pred(s),
            Val::Const(b) => Root::Const(b),
            Val::Reg(r) => Root::Ops { result: r },
        };
        Program {
            expr: normalized,
            key,
            slots: c.slots,
            ops: c.ops,
            num_regs: c.num_regs as usize,
            root,
        }
    }

    /// The normalized expression this program evaluates.
    pub fn expr(&self) -> &QueryExpr {
        &self.expr
    }

    /// The cache key ([`QueryExpr::cache_key`]) of the compiled expression.
    pub fn cache_key(&self) -> &str {
        &self.key
    }

    /// The distinct predicates, in first-occurrence (= evaluation) order.
    pub fn slots(&self) -> &[Predicate] {
        &self.slots
    }

    /// The linear op list.
    pub fn ops(&self) -> &[OpCode] {
        &self.ops
    }

    /// Number of mask registers the op list needs.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// How the final selection is produced.
    pub fn root(&self) -> Root {
        self.root
    }

    /// Bind planner decisions against `provider` under `mode`: one
    /// [`PredSource`] per slot, in slot order. Unanswerable predicates
    /// surface the same errors, in the same order, as the tree-walk
    /// evaluator (slot order is evaluation order).
    pub fn plan(&self, provider: &impl ColumnProvider, mode: PlanMode) -> Result<Vec<PredSource>> {
        self.slots
            .iter()
            .map(|pred| plan_predicate(pred, provider, mode))
            .collect()
    }

    /// Render the bound plan as deterministic text for snapshot tests: the
    /// cache key, the mode, every slot with its predicate and source, the op
    /// listing, and the root.
    pub fn explain(&self, provider: &impl ColumnProvider, mode: PlanMode) -> Result<String> {
        let sources = self.plan(provider, mode)?;
        let mut out = String::new();
        writeln!(out, "plan {}", self.key).expect("string write");
        writeln!(out, "mode: {mode}").expect("string write");
        for (i, (pred, source)) in self.slots.iter().zip(&sources).enumerate() {
            writeln!(out, "s{i}: {pred} <- {source}").expect("string write");
        }
        match self.root {
            Root::Pred(s) => writeln!(out, "root: s{s}").expect("string write"),
            Root::Const(b) => {
                writeln!(out, "root: const {}", if b { "all" } else { "none" })
                    .expect("string write");
            }
            Root::Ops { result } => {
                for op in &self.ops {
                    writeln!(out, "  {op}").expect("string write");
                }
                writeln!(out, "root: r{result}").expect("string write");
            }
        }
        Ok(out)
    }
}

/// Resolve one predicate to its [`PredSource`] under `mode`, replicating the
/// decision rules (and error strings) of the tree-walk evaluator
/// (`query::evaluate_predicate`) and of the chunked engine (`par`).
fn plan_predicate(
    pred: &Predicate,
    provider: &impl ColumnProvider,
    mode: PlanMode,
) -> Result<PredSource> {
    let data = provider.column(&pred.column);
    let index = provider.index(&pred.column);
    match mode {
        PlanMode::Sequential(ExecStrategy::ScanOnly) => {
            if data.is_none() {
                return Err(FastBitError::UnknownColumn(pred.column.clone()));
            }
            Ok(PredSource::Scan {
                pruned: has_default_zones(provider, &pred.column),
            })
        }
        PlanMode::Sequential(ExecStrategy::IndexOnly) => {
            let index = index.ok_or_else(|| {
                FastBitError::RawDataRequired(format!("no index for column {}", pred.column))
            })?;
            let exact = index.answers_exactly(&pred.range);
            if data.is_none() && !exact {
                return Err(FastBitError::RawDataRequired(format!(
                    "candidate check for column {}",
                    pred.column
                )));
            }
            Ok(PredSource::Index {
                encoding: index.choose_encoding(&pred.range),
                exact,
            })
        }
        PlanMode::Sequential(ExecStrategy::Auto) => match (index, data) {
            (Some(index), Some(_)) => Ok(PredSource::Index {
                encoding: index.choose_encoding(&pred.range),
                exact: index.answers_exactly(&pred.range),
            }),
            (Some(index), None) if index.answers_exactly(&pred.range) => Ok(PredSource::Index {
                encoding: index.choose_encoding(&pred.range),
                exact: true,
            }),
            (_, Some(_)) => Ok(PredSource::Scan {
                pruned: has_default_zones(provider, &pred.column),
            }),
            _ => Err(FastBitError::UnknownColumn(pred.column.clone())),
        },
        PlanMode::Chunked {
            pruning,
            index_accel,
        } => {
            if data.is_none() {
                return Err(FastBitError::UnknownColumn(pred.column.clone()));
            }
            match index.filter(|_| index_accel) {
                Some(index) => Ok(PredSource::Index {
                    encoding: index.choose_encoding(&pred.range),
                    exact: index.answers_exactly(&pred.range),
                }),
                None => Ok(PredSource::Scan { pruned: pruning }),
            }
        }
    }
}

/// Whether `provider` carries usable zone maps for `column` at the default
/// chunk size — the condition for arming a prune guard on a sequential scan.
fn has_default_zones(provider: &impl ColumnProvider, column: &str) -> bool {
    provider
        .zone_maps(column, DEFAULT_CHUNK_ROWS)
        .map(|z| z.chunk_rows() == DEFAULT_CHUNK_ROWS && z.num_rows() == provider.num_rows())
        .unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Fused sequential execution
// ---------------------------------------------------------------------------

fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// Zero the bits at positions `>= len` of the final word.
fn mask_padding(words: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Set bits `[start, start + len)`, whole words at a time where possible.
fn set_bit_range(words: &mut [u64], start: usize, len: usize) {
    let end = start + len;
    let mut i = start;
    while i < end {
        let w = i / 64;
        let bit = i % 64;
        if bit == 0 && end - i >= 64 {
            words[w] = u64::MAX;
            i += 64;
        } else {
            let take = (64 - bit).min(end - i);
            words[w] |= (((1u128 << take) - 1) as u64) << bit;
            i += take;
        }
    }
}

/// Scan rows `[start, start + len)` of `data` against `range`, setting the
/// matching bits.
fn scan_bit_range(
    words: &mut [u64],
    data: &[f64],
    start: usize,
    len: usize,
    range: &crate::query::ValueRange,
) {
    for (i, &v) in data[start..start + len].iter().enumerate() {
        if range.contains(v) {
            let row = start + i;
            words[row / 64] |= 1u64 << (row % 64);
        }
    }
}

/// Materialize one slot as a dense word bitmap over all `n` rows.
fn dense_slot(
    pred: &Predicate,
    source: PredSource,
    provider: &impl ColumnProvider,
    n: usize,
) -> Result<Vec<u64>> {
    let mut words = vec![0u64; words_for(n)];
    match source {
        PredSource::Scan { pruned } => {
            let data = provider
                .column(&pred.column)
                .ok_or_else(|| FastBitError::UnknownColumn(pred.column.clone()))?;
            if data.len() != n {
                return Err(FastBitError::RowCountMismatch {
                    index_rows: n,
                    data_rows: data.len(),
                });
            }
            let zones = if pruned {
                provider
                    .zone_maps(&pred.column, DEFAULT_CHUNK_ROWS)
                    .filter(|z| z.chunk_rows() == DEFAULT_CHUNK_ROWS && z.num_rows() == n)
            } else {
                None
            };
            match zones {
                Some(maps) => {
                    for chunk in 0..maps.num_chunks() {
                        let start = chunk * DEFAULT_CHUNK_ROWS;
                        let len = DEFAULT_CHUNK_ROWS.min(n - start);
                        match maps.zone(chunk).classify(&pred.range) {
                            crate::par::ZoneVerdict::Empty => {}
                            crate::par::ZoneVerdict::Full => set_bit_range(&mut words, start, len),
                            crate::par::ZoneVerdict::Scan => {
                                scan_bit_range(&mut words, data, start, len, &pred.range)
                            }
                        }
                    }
                }
                None => scan_bit_range(&mut words, data, 0, n, &pred.range),
            }
        }
        PredSource::Index { encoding, .. } => {
            let index = provider
                .index(&pred.column)
                .ok_or_else(|| FastBitError::UnknownColumn(pred.column.clone()))?;
            let selection = match provider.column(&pred.column) {
                Some(data) => index.evaluate_with(&pred.range, data, encoding)?,
                None => index.evaluate_index_only_with(&pred.range, encoding)?.0,
            };
            crate::index::note_encoding_query(encoding);
            selection.as_wah().write_dense_words(&mut words);
        }
    }
    Ok(words)
}

fn and_words(dst: &mut [u64], src: &[u64]) {
    for (a, b) in dst.iter_mut().zip(src) {
        *a &= *b;
    }
}

fn or_words(dst: &mut [u64], src: &[u64]) {
    for (a, b) in dst.iter_mut().zip(src) {
        *a |= *b;
    }
}

/// Rebuild a WAH bitmap from a dense word bitmap of `n` bits.
fn words_to_wah(words: &[u64], n: usize) -> Wah {
    let mut builder = WahBuilder::new();
    let mut remaining = n;
    for &w in words {
        let take = remaining.min(64);
        if w == 0 {
            builder.push_run(false, take as u64);
        } else if take == 64 && w == u64::MAX {
            builder.push_run(true, 64);
        } else {
            for bit in 0..take {
                builder.push_bit(w >> bit & 1 == 1);
            }
        }
        remaining -= take;
    }
    builder.finish()
}

/// Trace label of a planned predicate source.
fn source_name(source: PredSource) -> &'static str {
    match source {
        PredSource::Scan { pruned: true } => "scan+prune",
        PredSource::Scan { pruned: false } => "scan",
        PredSource::Index { .. } => "index",
    }
}

/// Execute a compiled program against `provider` with the sequential fused
/// engine. The selected rows equal tree-walk evaluation of the same
/// expression; for the program's (normalized) expression the WAH words are
/// bit-identical too.
pub fn execute(
    program: &Program,
    provider: &impl ColumnProvider,
    strategy: ExecStrategy,
) -> Result<Selection> {
    let _eval = obs::span("evaluate");
    let n = provider.num_rows();
    match program.root {
        // A single-predicate program delegates to the exact tree-walk leaf
        // path (identical output form and counters by construction).
        Root::Pred(slot) => {
            let pred = &program.slots[slot as usize];
            let _slot = obs::span("slot");
            obs::note("pred", || pred.to_string());
            if obs::is_active() {
                // The source note is trace-only decoration; plan() is cheap
                // next to the evaluation but still skipped when untraced.
                if let Ok(sources) = program.plan(provider, PlanMode::Sequential(strategy)) {
                    obs::note("source", || source_name(sources[slot as usize]).to_string());
                }
            }
            return evaluate_predicate(pred, provider, strategy);
        }
        Root::Const(true) => return Ok(Selection::all(n)),
        Root::Const(false) => return Ok(Selection::none(n)),
        Root::Ops { .. } => {}
    }
    let sources = program.plan(provider, PlanMode::Sequential(strategy))?;
    let mut slot_words = Vec::with_capacity(program.slots.len());
    for (pred, &source) in program.slots.iter().zip(&sources) {
        let _slot = obs::span("slot");
        obs::note("pred", || pred.to_string());
        obs::note("source", || source_name(source).to_string());
        slot_words.push(dense_slot(pred, source, provider, n)?);
    }
    let _combine = obs::span("combine");
    let mut regs: Vec<Vec<u64>> = vec![Vec::new(); program.num_regs];
    for op in &program.ops {
        match *op {
            OpCode::Load { dst, slot } => {
                regs[dst as usize] = slot_words[slot as usize].clone();
            }
            OpCode::LoadConst { dst, ones } => {
                let mut w = vec![if ones { u64::MAX } else { 0 }; words_for(n)];
                if ones {
                    mask_padding(&mut w, n);
                }
                regs[dst as usize] = w;
            }
            OpCode::AndReg { dst, src } => {
                let src_w = std::mem::take(&mut regs[src as usize]);
                and_words(&mut regs[dst as usize], &src_w);
            }
            OpCode::AndSlot { dst, slot } => {
                and_words(&mut regs[dst as usize], &slot_words[slot as usize]);
            }
            OpCode::OrReg { dst, src } => {
                let src_w = std::mem::take(&mut regs[src as usize]);
                or_words(&mut regs[dst as usize], &src_w);
            }
            OpCode::OrSlot { dst, slot } => {
                or_words(&mut regs[dst as usize], &slot_words[slot as usize]);
            }
            OpCode::Not { dst } => {
                for w in regs[dst as usize].iter_mut() {
                    *w = !*w;
                }
                mask_padding(&mut regs[dst as usize], n);
            }
        }
    }
    let Root::Ops { result } = program.root else {
        unreachable!("leaf roots returned above")
    };
    let built = words_to_wah(&regs[result as usize], n);
    // Canonicalize to operator form: the tree-walk evaluator's result for a
    // combiner root is always the output of a WAH boolean op, which is a
    // pure function of the logical bits. OR-ing with zeros reproduces it.
    let canonical = Wah::zeros(n as u64).or(&built)?;
    Ok(Selection::from_wah(canonical))
}

/// Compile `expr` and execute it sequentially — the drop-in compiled
/// counterpart of [`crate::evaluate_with_strategy`].
pub fn evaluate(
    expr: &QueryExpr,
    provider: &impl ColumnProvider,
    strategy: ExecStrategy,
) -> Result<Selection> {
    execute(&Program::compile(expr), provider, strategy)
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Effectiveness counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered by a cached program.
    pub hits: u64,
    /// Lookups that compiled a fresh program.
    pub misses: u64,
    /// Programs evicted by the capacity limit.
    pub evictions: u64,
    /// Programs currently held.
    pub len: usize,
}

#[derive(Debug)]
struct PlanEntry {
    program: Arc<Program>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    entries: HashMap<String, PlanEntry>,
    tick: u64,
}

/// An LRU cache of compiled programs keyed by [`QueryExpr::cache_key`].
/// Programs are provider-independent, so one entry serves every timestep.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` programs (0 disables caching:
    /// every lookup compiles).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(PlanCacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the program compiled from `expr`, compiling and caching it on a
    /// miss.
    pub fn get_or_compile(&self, expr: &QueryExpr) -> Arc<Program> {
        let _plan = obs::span("plan");
        let key = expr.cache_key();
        {
            let mut inner = self.inner.lock().expect("plan cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::count("hit", 1);
                return Arc::clone(&entry.program);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::count("hit", 0);
        let program = {
            let _compile = obs::span("compile");
            Arc::new(Program::compile(expr))
        };
        if self.capacity == 0 {
            return program;
        }
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        while inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("full cache is non-empty");
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.entries.insert(
            key,
            PlanEntry {
                program: Arc::clone(&program),
                last_used: tick,
            },
        );
        program
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.inner.lock().expect("plan cache lock").entries.len(),
        }
    }

    /// Register this cache's effectiveness counters into a metrics
    /// registry as `vdx_plan_cache_*` collectors.
    pub fn register_metrics(self: &Arc<Self>, registry: &obs::Registry) {
        for (event, pick) in [("hit", 0usize), ("miss", 1), ("eviction", 2)] {
            let cache = Arc::clone(self);
            registry.counter_fn(
                "vdx_plan_cache_events_total",
                "Plan cache lookups and evictions by outcome.",
                &[("event", event)],
                move || {
                    let s = cache.stats();
                    [s.hits, s.misses, s.evictions][pick]
                },
            );
        }
        let cache = Arc::clone(self);
        registry.gauge_fn(
            "vdx_plan_cache_len",
            "Compiled programs currently held by the plan cache.",
            &[],
            move || cache.stats().len as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use std::collections::HashMap as Map;

    struct MemProvider {
        columns: Map<String, Vec<f64>>,
        rows: usize,
    }

    impl MemProvider {
        fn new(columns: Vec<(&str, Vec<f64>)>) -> Self {
            let rows = columns[0].1.len();
            Self {
                columns: columns
                    .into_iter()
                    .map(|(n, d)| (n.to_string(), d))
                    .collect(),
                rows,
            }
        }
    }

    impl ColumnProvider for MemProvider {
        fn num_rows(&self) -> usize {
            self.rows
        }
        fn column(&self, name: &str) -> Option<&[f64]> {
            self.columns.get(name).map(|v| v.as_slice())
        }
        fn index(&self, _name: &str) -> Option<&crate::index::BitmapIndex> {
            None
        }
    }

    fn ramp(n: usize) -> MemProvider {
        MemProvider::new(vec![
            ("x", (0..n).map(|i| i as f64).collect::<Vec<f64>>()),
            ("y", (0..n).map(|i| (i % 97) as f64).collect::<Vec<f64>>()),
        ])
    }

    #[test]
    fn duplicate_predicates_share_one_slot() {
        let e = parse_query("(x > 3 && y < 5) || (x > 3 && y > 90)").unwrap();
        let p = Program::compile(&e);
        assert_eq!(p.slots().len(), 3, "x > 3 interned once");
        assert!(matches!(p.root(), Root::Ops { .. }));
    }

    #[test]
    fn single_predicate_compiles_to_leaf_root() {
        let e = parse_query("x > 3").unwrap();
        let p = Program::compile(&e);
        assert_eq!(p.root(), Root::Pred(0));
        assert!(p.ops().is_empty());
    }

    #[test]
    fn double_negation_compiles_like_the_plain_predicate() {
        // normalized() collapses !!p to p: identical cache keys must yield
        // identical programs (the cache shares entries by key).
        let plain = Program::compile(&parse_query("x > 3").unwrap());
        let doubled = Program::compile(&parse_query("!(!(x > 3))").unwrap());
        assert_eq!(plain, doubled);
    }

    #[test]
    fn empty_combiners_compile_to_constants() {
        assert_eq!(
            Program::compile(&QueryExpr::And(Vec::new())).root(),
            Root::Const(true)
        );
        assert_eq!(
            Program::compile(&QueryExpr::Or(Vec::new())).root(),
            Root::Const(false)
        );
        let p = ramp(100);
        let all = execute(
            &Program::compile(&QueryExpr::And(Vec::new())),
            &p,
            ExecStrategy::ScanOnly,
        )
        .unwrap();
        assert_eq!(all.count(), 100);
        let none = execute(
            &Program::compile(&QueryExpr::Or(Vec::new())),
            &p,
            ExecStrategy::ScanOnly,
        )
        .unwrap();
        assert_eq!(none.count(), 0);
    }

    #[test]
    fn registers_are_reused_after_death() {
        // ((a && b) || (c && d)) needs two live registers, not four.
        let e = parse_query("(x > 1 && y > 2) || (x < 90 && y < 80)").unwrap();
        let p = Program::compile(&e);
        assert!(p.num_regs() <= 2, "got {} regs", p.num_regs());
    }

    #[test]
    fn compiled_matches_tree_walk_words() {
        let p = ramp(10_000);
        for q in [
            "x > 100 && x < 9000",
            "(x > 100 && y < 50) || !(x <= 5000)",
            "!(x < 500) && !(y >= 60) && x < 9999",
            "x (-inf, +inf)",
        ] {
            let expr = parse_query(q).unwrap();
            let norm = expr.normalized();
            let oracle =
                crate::query::evaluate_with_strategy(&norm, &p, ExecStrategy::ScanOnly).unwrap();
            let got = evaluate(&expr, &p, ExecStrategy::ScanOnly).unwrap();
            assert_eq!(got.as_wah(), oracle.as_wah(), "{q}");
        }
    }

    #[test]
    fn plan_cache_hits_and_evicts() {
        let cache = PlanCache::new(2);
        let a = parse_query("x > 1").unwrap();
        let b = parse_query("x > 2").unwrap();
        let c = parse_query("x > 3").unwrap();
        cache.get_or_compile(&a);
        cache.get_or_compile(&a);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        cache.get_or_compile(&b);
        cache.get_or_compile(&c); // evicts the LRU entry
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        // `a` and `!!a` share a key: the second is a hit, not a compile.
        let doubled = QueryExpr::Not(Box::new(QueryExpr::Not(Box::new(c.clone()))));
        let before = cache.stats().hits;
        cache.get_or_compile(&doubled);
        assert_eq!(cache.stats().hits, before + 1);
    }

    #[test]
    fn zero_capacity_plan_cache_never_stores() {
        let cache = PlanCache::new(0);
        let e = parse_query("x > 1").unwrap();
        cache.get_or_compile(&e);
        cache.get_or_compile(&e);
        let s = cache.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn plan_errors_match_tree_walk() {
        let p = ramp(100);
        let expr = parse_query("x > 1 && nope > 2").unwrap();
        let tree =
            crate::query::evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap_err();
        let compiled = evaluate(&expr, &p, ExecStrategy::ScanOnly).unwrap_err();
        assert_eq!(tree, compiled);
        let idx_err = evaluate(&expr, &p, ExecStrategy::IndexOnly).unwrap_err();
        assert!(matches!(idx_err, FastBitError::RawDataRequired(_)));
    }

    #[test]
    fn set_bit_range_handles_unaligned_spans() {
        for (start, len) in [(0usize, 64usize), (3, 7), (60, 10), (64, 128), (1, 191)] {
            let mut words = vec![0u64; 3];
            set_bit_range(&mut words, start, len);
            for bit in 0..192 {
                let expected = bit >= start && bit < start + len;
                let got = words[bit / 64] >> (bit % 64) & 1 == 1;
                assert_eq!(got, expected, "start {start} len {len} bit {bit}");
            }
        }
    }

    #[test]
    fn explain_is_deterministic() {
        let p = ramp(100);
        let e = parse_query("(x > 1 && y < 5) || !(x > 1)").unwrap();
        let program = Program::compile(&e);
        let a = program
            .explain(&p, PlanMode::Sequential(ExecStrategy::ScanOnly))
            .unwrap();
        let b = program
            .explain(&p, PlanMode::Sequential(ExecStrategy::ScanOnly))
            .unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with(&format!("plan {}\n", e.cache_key())));
        assert!(a.contains("<- scan"));
    }

    #[test]
    fn words_to_wah_round_trips() {
        for n in [0usize, 1, 63, 64, 65, 127, 200] {
            let mut words = vec![0u64; words_for(n)];
            for bit in (0..n).step_by(3) {
                words[bit / 64] |= 1 << (bit % 64);
            }
            let wah = words_to_wah(&words, n);
            assert_eq!(wah.len(), n as u64);
            let rows: Vec<u64> = wah.iter_ones().collect();
            let expected: Vec<u64> = (0..n as u64).step_by(3).collect();
            assert_eq!(rows, expected);
        }
    }
}
