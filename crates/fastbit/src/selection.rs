//! Row selections: the result of evaluating a query.
//!
//! A [`Selection`] is a compressed bitmap over the rows of one dataset
//! (one timestep file in the paper's setting). Compound Boolean range queries
//! are built by combining per-predicate selections with `AND`/`OR`/`NOT`.

use crate::error::{FastBitError, Result};
use crate::wah::Wah;

/// A set of selected rows, stored as a WAH-compressed bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    bits: Wah,
}

impl Selection {
    /// A selection containing no rows out of `num_rows`.
    pub fn none(num_rows: usize) -> Self {
        Self {
            bits: Wah::zeros(num_rows as u64),
        }
    }

    /// A selection containing every one of `num_rows` rows.
    pub fn all(num_rows: usize) -> Self {
        Self {
            bits: Wah::ones(num_rows as u64),
        }
    }

    /// Wrap an existing bitmap.
    pub fn from_wah(bits: Wah) -> Self {
        Self { bits }
    }

    /// Build from sorted, unique row indices.
    pub fn from_sorted_rows(num_rows: usize, rows: impl IntoIterator<Item = usize>) -> Self {
        Self {
            bits: Wah::from_sorted_indices(num_rows as u64, rows.into_iter().map(|r| r as u64)),
        }
    }

    /// Build by evaluating a predicate over every row (sequential scan).
    pub fn from_predicate<T>(data: &[T], mut pred: impl FnMut(&T) -> bool) -> Self {
        let mut builder = crate::wah::WahBuilder::new();
        for v in data {
            builder.push_bit(pred(v));
        }
        Self {
            bits: builder.finish(),
        }
    }

    /// Number of rows covered (selected or not).
    pub fn num_rows(&self) -> usize {
        self.bits.len() as usize
    }

    /// Number of selected rows ("hits").
    pub fn count(&self) -> u64 {
        self.bits.count_ones()
    }

    /// True when no row is selected.
    pub fn is_none_selected(&self) -> bool {
        self.count() == 0
    }

    /// Iterate over selected row indices in increasing order.
    pub fn iter_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_ones().map(|i| i as usize)
    }

    /// Collect the selected row indices.
    pub fn to_rows(&self) -> Vec<usize> {
        self.iter_rows().collect()
    }

    /// Access the underlying bitmap.
    pub fn as_wah(&self) -> &Wah {
        &self.bits
    }

    /// Intersection with another selection over the same rows.
    pub fn and(&self, other: &Selection) -> Result<Selection> {
        Ok(Selection {
            bits: self.bits.and(&other.bits)?,
        })
    }

    /// Union with another selection over the same rows.
    pub fn or(&self, other: &Selection) -> Result<Selection> {
        Ok(Selection {
            bits: self.bits.or(&other.bits)?,
        })
    }

    /// Rows selected here but not in `other`.
    pub fn and_not(&self, other: &Selection) -> Result<Selection> {
        Ok(Selection {
            bits: self.bits.and_not(&other.bits)?,
        })
    }

    /// Complement over the covered rows.
    pub fn not(&self) -> Selection {
        Selection {
            bits: self.bits.not(),
        }
    }

    /// Check that this selection covers exactly `rows` rows.
    pub fn check_rows(&self, rows: usize) -> Result<()> {
        if self.num_rows() != rows {
            return Err(FastBitError::RowCountMismatch {
                index_rows: self.num_rows(),
                data_rows: rows,
            });
        }
        Ok(())
    }

    /// Gather the values of `column` at the selected rows.
    pub fn gather(&self, column: &[f64]) -> Vec<f64> {
        self.iter_rows().map(|r| column[r]).collect()
    }

    /// Gather the values of an integer column at the selected rows.
    pub fn gather_u64(&self, column: &[u64]) -> Vec<u64> {
        self.iter_rows().map(|r| column[r]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let all = Selection::all(100);
        let none = Selection::none(100);
        assert_eq!(all.count(), 100);
        assert_eq!(none.count(), 0);
        assert!(none.is_none_selected());
        assert_eq!(all.num_rows(), 100);
    }

    #[test]
    fn predicate_scan_selects_rows() {
        let data = vec![1.0, 5.0, 2.0, 8.0, 3.0];
        let s = Selection::from_predicate(&data, |&v| v > 2.5);
        assert_eq!(s.to_rows(), vec![1, 3, 4]);
        assert_eq!(s.gather(&data), vec![5.0, 8.0, 3.0]);
    }

    #[test]
    fn boolean_combinations() {
        let a = Selection::from_sorted_rows(10, [1, 3, 5, 7]);
        let b = Selection::from_sorted_rows(10, [3, 4, 5]);
        assert_eq!(a.and(&b).unwrap().to_rows(), vec![3, 5]);
        assert_eq!(a.or(&b).unwrap().to_rows(), vec![1, 3, 4, 5, 7]);
        assert_eq!(a.and_not(&b).unwrap().to_rows(), vec![1, 7]);
        assert_eq!(a.not().count(), 6);
    }

    #[test]
    fn mismatched_row_counts_error() {
        let a = Selection::all(10);
        let b = Selection::all(11);
        assert!(a.and(&b).is_err());
        assert!(a.check_rows(10).is_ok());
        assert!(a.check_rows(11).is_err());
    }

    #[test]
    fn gather_u64_collects_ids() {
        let ids: Vec<u64> = (100..110).collect();
        let s = Selection::from_sorted_rows(10, [0, 9]);
        assert_eq!(s.gather_u64(&ids), vec![100, 109]);
    }
}
