//! The "Custom" sequential-scan baseline.
//!
//! The paper benchmarks FastBit against a standalone application that has no
//! index and therefore scans every data record: for histograms it examines
//! every row; for particle-identifier queries it walks the dataset once and
//! performs an `O(log S)` binary search of the sorted search set per record
//! (overall `O(N log S)`). These functions reproduce that baseline so the
//! benchmark harness can regenerate Figures 11–17.

use histogram::{BinEdges, Hist1D, Hist2D};

use crate::error::Result;
use crate::query::{ColumnProvider, QueryExpr};
use crate::selection::Selection;
use crate::wah::WahBuilder;

/// Evaluate a compound range query by scanning every row.
pub fn scan_query(expr: &QueryExpr, provider: &impl ColumnProvider) -> Result<Selection> {
    let rows = provider.num_rows();
    let mut builder = WahBuilder::new();
    for row in 0..rows {
        builder.push_bit(expr.matches_row(provider, row)?);
    }
    Ok(Selection::from_wah(builder.finish()))
}

/// Unconditional 1D histogram by sequential scan.
pub fn scan_hist1d(data: &[f64], edges: BinEdges) -> Hist1D {
    Hist1D::from_data(edges, data)
}

/// Unconditional 2D histogram by sequential scan.
pub fn scan_hist2d(xs: &[f64], ys: &[f64], x_edges: BinEdges, y_edges: BinEdges) -> Hist2D {
    Hist2D::from_data(x_edges, y_edges, xs, ys)
}

/// Conditional 2D histogram by a single fused scan: every row is tested
/// against the condition and, when it matches, binned immediately. Unlike the
/// index path there is no intermediate hit list, which is why this wins when
/// the selection covers most of the dataset.
pub fn scan_conditional_hist2d(
    xs: &[f64],
    ys: &[f64],
    x_edges: BinEdges,
    y_edges: BinEdges,
    provider: &impl ColumnProvider,
    condition: &QueryExpr,
) -> Result<Hist2D> {
    let mut h = Hist2D::new(x_edges, y_edges);
    for row in 0..provider.num_rows() {
        if condition.matches_row(provider, row)? {
            h.push(xs[row], ys[row]);
        }
    }
    Ok(h)
}

/// Locate the rows whose identifier appears in `search_set` by scanning the
/// whole identifier column; the search set is sorted once and each record
/// does an `O(log S)` membership test.
pub fn scan_id_search(ids: &[u64], search_set: &[u64]) -> Selection {
    let mut sorted: Vec<u64> = search_set.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut builder = WahBuilder::new();
    for &id in ids {
        builder.push_bit(sorted.binary_search(&id).is_ok());
    }
    Selection::from_wah(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BitmapIndex, IdIndex};
    use crate::query::{QueryExpr, ValueRange};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashMap;

    struct MemProvider {
        columns: HashMap<String, Vec<f64>>,
        rows: usize,
    }

    impl ColumnProvider for MemProvider {
        fn num_rows(&self) -> usize {
            self.rows
        }
        fn column(&self, name: &str) -> Option<&[f64]> {
            self.columns.get(name).map(|v| v.as_slice())
        }
        fn index(&self, _name: &str) -> Option<&BitmapIndex> {
            None
        }
    }

    fn provider(n: usize) -> MemProvider {
        let mut rng = StdRng::seed_from_u64(7);
        let px: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e11)).collect();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut columns = HashMap::new();
        columns.insert("px".to_string(), px);
        columns.insert("x".to_string(), x);
        MemProvider { columns, rows: n }
    }

    #[test]
    fn scan_query_matches_index_query() {
        let p = provider(5000);
        let expr = QueryExpr::pred("px", ValueRange::gt(5e10))
            .and(QueryExpr::pred("x", ValueRange::lt(0.5)));
        let scanned = scan_query(&expr, &p).unwrap();
        // Independent reference evaluation.
        let expected: Vec<usize> = (0..p.rows)
            .filter(|&r| p.columns["px"][r] > 5e10 && p.columns["x"][r] < 0.5)
            .collect();
        assert_eq!(scanned.to_rows(), expected);
    }

    #[test]
    fn conditional_scan_hist_matches_two_phase() {
        let p = provider(4000);
        let expr = QueryExpr::pred("px", ValueRange::gt(8e10));
        let xe = BinEdges::uniform(0.0, 1.0, 32).unwrap();
        let ye = BinEdges::uniform(0.0, 1e11, 32).unwrap();
        let fused = scan_conditional_hist2d(
            &p.columns["x"],
            &p.columns["px"],
            xe.clone(),
            ye.clone(),
            &p,
            &expr,
        )
        .unwrap();
        let selection = scan_query(&expr, &p).unwrap();
        let two_phase = Hist2D::from_data_masked(
            xe,
            ye,
            &p.columns["x"],
            &p.columns["px"],
            selection.iter_rows(),
        );
        assert_eq!(fused.counts(), two_phase.counts());
    }

    #[test]
    fn scan_id_search_matches_id_index() {
        let mut rng = StdRng::seed_from_u64(99);
        let ids: Vec<u64> = (0..20_000u64).map(|i| i * 3 + 1).collect();
        let search: Vec<u64> = (0..500).map(|_| rng.gen_range(0..60_000)).collect();
        let scanned = scan_id_search(&ids, &search);
        let indexed = IdIndex::build(&ids).select(&search);
        assert_eq!(scanned.to_rows(), indexed.to_rows());
    }

    #[test]
    fn scan_id_search_empty_set_selects_nothing() {
        let ids: Vec<u64> = (0..100).collect();
        assert!(scan_id_search(&ids, &[]).is_none_selected());
    }

    #[test]
    fn scan_hist_wrappers_count_everything() {
        let p = provider(1000);
        let e = BinEdges::uniform(0.0, 1.0, 16).unwrap();
        assert_eq!(scan_hist1d(&p.columns["x"], e.clone()).total(), 1000);
        let h = scan_hist2d(
            &p.columns["x"],
            &p.columns["px"],
            e,
            BinEdges::uniform(0.0, 1e11, 16).unwrap(),
        );
        assert_eq!(h.total(), 1000);
    }
}
