//! Unconditional and conditional histogram computation.
//!
//! The paper's visual pipeline never ships raw particle data downstream; it
//! ships histograms. Two kinds are needed (Section V-A):
//!
//! * **Unconditional histograms** — one-time computation over the whole
//!   dataset, providing the initial context view.
//! * **Conditional histograms** — recomputed every time the user refines the
//!   selection; the condition is a compound Boolean range query. FastBit
//!   evaluates the condition first (producing an intermediate list of hits)
//!   and then bins only the hits, which is why it wins when selections are
//!   small and loses to a straight scan when nearly everything is selected.
//!
//! [`HistogramEngine`] exposes both, with a FastBit-style indexed path and a
//! "Custom" scan path so the two can be benchmarked against each other as in
//! Figures 11, 12 and 14.

use histogram::{rebin_equal_weight, BinEdges, Hist1D, Hist2D};

use crate::error::{FastBitError, Result};
use crate::par::{self, ChunkMasks, ParExec};
use crate::query::{ColumnProvider, ExecStrategy, QueryExpr};
use crate::selection::Selection;

/// How histogram bins should be chosen.
#[derive(Debug, Clone)]
pub enum BinSpec {
    /// `n` uniform (equal-width) bins spanning the data range.
    Uniform(usize),
    /// About `n` adaptive (equal-weight) bins derived from the data
    /// distribution.
    Adaptive(usize),
    /// Explicit, caller-supplied edges.
    Edges(BinEdges),
}

impl BinSpec {
    /// Requested number of bins (exact for uniform/explicit, a target for
    /// adaptive).
    pub fn bins(&self) -> usize {
        match self {
            BinSpec::Uniform(n) | BinSpec::Adaptive(n) => *n,
            BinSpec::Edges(e) => e.num_bins(),
        }
    }
}

/// Which implementation computes the histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistEngine {
    /// Index-accelerated path (FastBit in the paper's charts).
    FastBit,
    /// Sequential scan of the raw data (the "Custom" baseline).
    Custom,
}

/// Histogram computation facade over a [`ColumnProvider`].
pub struct HistogramEngine<'a, P: ColumnProvider> {
    provider: &'a P,
}

impl<'a, P: ColumnProvider> HistogramEngine<'a, P> {
    /// Create an engine reading columns (and indexes) from `provider`.
    pub fn new(provider: &'a P) -> Self {
        Self { provider }
    }

    fn column(&self, name: &str) -> Result<&'a [f64]> {
        self.provider
            .column(name)
            .ok_or_else(|| FastBitError::UnknownColumn(name.to_string()))
    }

    /// Resolve bin edges for `column` under `spec`, optionally restricted to
    /// the rows of `selection` (conditional adaptive binning needs the
    /// selected values' own min/max and distribution, which is exactly the
    /// extra cost the paper observes for adaptive conditional histograms on
    /// large selections).
    pub fn resolve_edges(
        &self,
        column: &str,
        spec: &BinSpec,
        selection: Option<&Selection>,
        engine: HistEngine,
    ) -> Result<BinEdges> {
        match spec {
            BinSpec::Edges(e) => Ok(e.clone()),
            BinSpec::Uniform(n) => match selection {
                None => {
                    // Unconditional: the index already knows the value range.
                    if engine == HistEngine::FastBit {
                        if let Some(idx) = self.provider.index(column) {
                            return Ok(BinEdges::uniform(idx.edges().lo(), idx.edges().hi(), *n)?);
                        }
                    }
                    let data = self.column(column)?;
                    Ok(BinEdges::uniform_from_data(data, *n)?)
                }
                Some(sel) => {
                    let data = self.column(column)?;
                    let values = sel.gather(data);
                    if values.is_empty() {
                        return Ok(BinEdges::uniform_from_data(data, *n)?);
                    }
                    Ok(BinEdges::uniform_from_data(&values, *n)?)
                }
            },
            BinSpec::Adaptive(n) => match selection {
                None => {
                    if engine == HistEngine::FastBit {
                        if let Some(idx) = self.provider.index(column) {
                            // FastBit derives adaptive bins by merging the
                            // fine index bins so each coarse bin holds about
                            // the same number of records.
                            let fine = Hist1D::from_counts(idx.edges().clone(), idx.bin_counts())?;
                            return Ok(rebin_equal_weight(&fine, *n)?);
                        }
                    }
                    let data = self.column(column)?;
                    Ok(BinEdges::equal_weight_from_data(data, *n)?)
                }
                Some(sel) => {
                    let data = self.column(column)?;
                    let values = sel.gather(data);
                    if values.is_empty() {
                        return Ok(BinEdges::uniform_from_data(data, *n)?);
                    }
                    Ok(BinEdges::equal_weight_from_data(&values, *n)?)
                }
            },
        }
    }

    /// Evaluate the condition of a conditional histogram through the
    /// compiled engine (selected rows identical to tree-walk evaluation —
    /// pinned by `tests/compile_differential.rs`).
    pub fn evaluate_condition(
        &self,
        condition: &QueryExpr,
        engine: HistEngine,
    ) -> Result<Selection> {
        let strategy = match engine {
            HistEngine::FastBit => ExecStrategy::Auto,
            HistEngine::Custom => ExecStrategy::ScanOnly,
        };
        crate::compile::evaluate(condition, self.provider, strategy)
    }

    /// Compute a 1D histogram of `column`.
    pub fn hist1d(
        &self,
        column: &str,
        spec: &BinSpec,
        condition: Option<&QueryExpr>,
        engine: HistEngine,
    ) -> Result<Hist1D> {
        let selection = condition
            .map(|c| self.evaluate_condition(c, engine))
            .transpose()?;
        let edges = self.resolve_edges(column, spec, selection.as_ref(), engine)?;

        // Pure-index fast path: unconditional, uniform request whose bins can
        // be read straight off the index bin counts.
        if engine == HistEngine::FastBit && selection.is_none() {
            if let Some(idx) = self.provider.index(column) {
                if idx.edges() == &edges {
                    return Ok(Hist1D::from_counts(edges, idx.bin_counts())?);
                }
            }
        }

        let data = self.column(column)?;
        Ok(match &selection {
            None => Hist1D::from_data(edges, data),
            Some(sel) => Hist1D::from_data_masked(edges, data, sel.iter_rows()),
        })
    }

    /// Compute a 2D histogram of the pair `(x_column, y_column)` — the unit
    /// of work for one pair of adjacent parallel-coordinate axes.
    pub fn hist2d(
        &self,
        x_column: &str,
        y_column: &str,
        x_spec: &BinSpec,
        y_spec: &BinSpec,
        condition: Option<&QueryExpr>,
        engine: HistEngine,
    ) -> Result<Hist2D> {
        let selection = condition
            .map(|c| self.evaluate_condition(c, engine))
            .transpose()?;
        self.hist2d_with_selection(
            x_column,
            y_column,
            x_spec,
            y_spec,
            selection.as_ref(),
            engine,
        )
    }

    /// Same as [`HistogramEngine::hist2d`] but reusing an already evaluated
    /// selection; this is what the pipeline does when several axis pairs are
    /// histogrammed under one condition.
    pub fn hist2d_with_selection(
        &self,
        x_column: &str,
        y_column: &str,
        x_spec: &BinSpec,
        y_spec: &BinSpec,
        selection: Option<&Selection>,
        engine: HistEngine,
    ) -> Result<Hist2D> {
        let x_edges = self.resolve_edges(x_column, x_spec, selection, engine)?;
        let y_edges = self.resolve_edges(y_column, y_spec, selection, engine)?;
        let xs = self.column(x_column)?;
        let ys = self.column(y_column)?;
        if xs.len() != ys.len() {
            return Err(FastBitError::RowCountMismatch {
                index_rows: xs.len(),
                data_rows: ys.len(),
            });
        }
        Ok(match selection {
            None => Hist2D::from_data(x_edges, y_edges, xs, ys),
            Some(sel) => {
                sel.check_rows(xs.len())?;
                Hist2D::from_data_masked(x_edges, y_edges, xs, ys, sel.iter_rows())
            }
        })
    }

    /// Compute the 2D histograms of several adjacent axis pairs under one
    /// shared condition — the per-timestep work unit of the parallel
    /// histogram benchmark (five position/momentum pairs in Section V-C).
    pub fn hist2d_pairs(
        &self,
        pairs: &[(String, String)],
        spec: &BinSpec,
        condition: Option<&QueryExpr>,
        engine: HistEngine,
    ) -> Result<Vec<Hist2D>> {
        let selection = condition
            .map(|c| self.evaluate_condition(c, engine))
            .transpose()?;
        pairs
            .iter()
            .map(|(x, y)| self.hist2d_with_selection(x, y, spec, spec, selection.as_ref(), engine))
            .collect()
    }
}

/// A condition evaluated by the chunked parallel engine: the per-chunk masks
/// (for parallel binning) together with the merged [`Selection`] (for edge
/// resolution and for callers that need the row set).
#[derive(Debug, Clone)]
pub struct EvaluatedCondition {
    /// Per-chunk match masks.
    pub masks: ChunkMasks,
    /// The merged selection (same row set as sequential evaluation).
    pub selection: Selection,
}

impl<'a, P: ColumnProvider + Sync> HistogramEngine<'a, P> {
    /// Evaluate a condition with the chunked parallel engine. The selected
    /// row set is identical to [`HistogramEngine::evaluate_condition`] for
    /// either engine — chunked evaluation is scan-exact by construction.
    pub fn evaluate_condition_chunked(
        &self,
        condition: &QueryExpr,
        exec: &ParExec,
    ) -> Result<EvaluatedCondition> {
        let masks = par::evaluate_chunk_masks(condition, self.provider, exec)?;
        let selection = masks.to_selection();
        Ok(EvaluatedCondition { masks, selection })
    }

    /// Parallel counterpart of [`HistogramEngine::hist1d`]: the condition is
    /// evaluated chunk-by-chunk (zone-map pruned) and the binning itself is
    /// chunked across the pool, with per-chunk partial counts merged in
    /// chunk order. Bin edges are resolved exactly as in the sequential
    /// path, so the resulting histogram is identical bin-for-bin.
    pub fn hist1d_par(
        &self,
        column: &str,
        spec: &BinSpec,
        condition: Option<&QueryExpr>,
        engine: HistEngine,
        exec: &ParExec,
    ) -> Result<Hist1D> {
        let cond = condition
            .map(|c| self.evaluate_condition_chunked(c, exec))
            .transpose()?;
        let edges =
            self.resolve_edges(column, spec, cond.as_ref().map(|c| &c.selection), engine)?;

        // Mirror the sequential pure-index fast path bit-for-bit: an
        // unconditional FastBit request whose edges coincide with the index
        // reads the counts straight off the bitmaps.
        if engine == HistEngine::FastBit && cond.is_none() {
            if let Some(idx) = self.provider.index(column) {
                if idx.edges() == &edges {
                    return Ok(Hist1D::from_counts(edges, idx.bin_counts())?);
                }
            }
        }

        let data = self.column(column)?;
        par_hist1d(edges, data, cond.as_ref().map(|c| &c.masks), exec)
    }

    /// Parallel counterpart of [`HistogramEngine::hist2d_with_selection`],
    /// reusing an already chunk-evaluated condition so several axis pairs
    /// can share one evaluation.
    #[allow(clippy::too_many_arguments)] // mirrors hist2d_with_selection + exec
    pub fn hist2d_with_condition_par(
        &self,
        x_column: &str,
        y_column: &str,
        x_spec: &BinSpec,
        y_spec: &BinSpec,
        cond: Option<&EvaluatedCondition>,
        engine: HistEngine,
        exec: &ParExec,
    ) -> Result<Hist2D> {
        let selection = cond.map(|c| &c.selection);
        let x_edges = self.resolve_edges(x_column, x_spec, selection, engine)?;
        let y_edges = self.resolve_edges(y_column, y_spec, selection, engine)?;
        let xs = self.column(x_column)?;
        let ys = self.column(y_column)?;
        if xs.len() != ys.len() {
            return Err(FastBitError::RowCountMismatch {
                index_rows: xs.len(),
                data_rows: ys.len(),
            });
        }
        if let Some(sel) = selection {
            sel.check_rows(xs.len())?;
        }
        par_hist2d(x_edges, y_edges, xs, ys, cond.map(|c| &c.masks), exec)
    }
}

/// Chunked 1D binning: each chunk bins its (selected) rows into a private
/// histogram; partials are merged in chunk order. Counts are exact integer
/// sums, so the result equals the sequential histogram bin-for-bin.
fn par_hist1d(
    edges: BinEdges,
    data: &[f64],
    masks: Option<&ChunkMasks>,
    exec: &ParExec,
) -> Result<Hist1D> {
    if let Some(m) = masks {
        if m.num_rows() != data.len() {
            return Err(FastBitError::RowCountMismatch {
                index_rows: m.num_rows(),
                data_rows: data.len(),
            });
        }
    }
    let chunk_rows = exec.chunk_rows();
    let num_chunks = data.len().div_ceil(chunk_rows);
    let partials = exec.run_chunks(num_chunks, |chunk| {
        let start = chunk * chunk_rows;
        let len = chunk_rows.min(data.len() - start);
        let mut h = Hist1D::new(edges.clone());
        match masks {
            None => h.accumulate(&data[start..start + len]),
            Some(m) => m.mask(chunk).for_each_row(len, |r| h.push(data[start + r])),
        }
        Ok(h)
    })?;
    let mut out = Hist1D::new(edges);
    for p in &partials {
        out.merge_counts(p)?;
    }
    Ok(out)
}

/// Chunked 2D binning; see [`par_hist1d`].
fn par_hist2d(
    x_edges: BinEdges,
    y_edges: BinEdges,
    xs: &[f64],
    ys: &[f64],
    masks: Option<&ChunkMasks>,
    exec: &ParExec,
) -> Result<Hist2D> {
    if let Some(m) = masks {
        if m.num_rows() != xs.len() {
            return Err(FastBitError::RowCountMismatch {
                index_rows: m.num_rows(),
                data_rows: xs.len(),
            });
        }
    }
    let chunk_rows = exec.chunk_rows();
    let num_chunks = xs.len().div_ceil(chunk_rows);
    let partials = exec.run_chunks(num_chunks, |chunk| {
        let start = chunk * chunk_rows;
        let len = chunk_rows.min(xs.len() - start);
        let mut h = Hist2D::new(x_edges.clone(), y_edges.clone());
        match masks {
            None => h.accumulate(&xs[start..start + len], &ys[start..start + len]),
            Some(m) => m
                .mask(chunk)
                .for_each_row(len, |r| h.push(xs[start + r], ys[start + r])),
        }
        Ok(h)
    })?;
    let mut out = Hist2D::new(x_edges, y_edges);
    for p in &partials {
        out.merge_counts(p)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BitmapIndex;
    use crate::query::ValueRange;
    use histogram::Binning;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::HashMap;

    struct MemProvider {
        columns: HashMap<String, Vec<f64>>,
        indexes: HashMap<String, BitmapIndex>,
        rows: usize,
    }

    impl ColumnProvider for MemProvider {
        fn num_rows(&self) -> usize {
            self.rows
        }
        fn column(&self, name: &str) -> Option<&[f64]> {
            self.columns.get(name).map(|v| v.as_slice())
        }
        fn index(&self, name: &str) -> Option<&BitmapIndex> {
            self.indexes.get(name)
        }
    }

    fn provider(n: usize) -> MemProvider {
        let mut rng = StdRng::seed_from_u64(42);
        let px: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e11)).collect();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e-3)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let mut columns = HashMap::new();
        let mut indexes = HashMap::new();
        for (name, data) in [("px", px), ("x", x), ("y", y)] {
            indexes.insert(
                name.to_string(),
                BitmapIndex::build(&data, &Binning::EqualWidth { bins: 128 }).unwrap(),
            );
            columns.insert(name.to_string(), data);
        }
        MemProvider {
            columns,
            indexes,
            rows: n,
        }
    }

    #[test]
    fn unconditional_hist2d_engines_agree() {
        let p = provider(5000);
        let engine = HistogramEngine::new(&p);
        let fast = engine
            .hist2d(
                "x",
                "px",
                &BinSpec::Uniform(64),
                &BinSpec::Uniform(64),
                None,
                HistEngine::FastBit,
            )
            .unwrap();
        let custom = engine
            .hist2d(
                "x",
                "px",
                &BinSpec::Uniform(64),
                &BinSpec::Uniform(64),
                None,
                HistEngine::Custom,
            )
            .unwrap();
        assert_eq!(fast.total(), 5000);
        assert_eq!(custom.total(), 5000);
        // Engines may pick marginally different ranges (index boundaries vs
        // exact data min/max), so compare totals and coarse structure.
        assert_eq!(fast.shape(), custom.shape());
    }

    #[test]
    fn conditional_hist_counts_only_hits() {
        let p = provider(8000);
        let engine = HistogramEngine::new(&p);
        let cond = QueryExpr::pred("px", ValueRange::gt(9e10));
        let expected_hits = p.columns["px"].iter().filter(|&&v| v > 9e10).count() as u64;
        for eng in [HistEngine::FastBit, HistEngine::Custom] {
            let h = engine
                .hist2d(
                    "x",
                    "px",
                    &BinSpec::Uniform(32),
                    &BinSpec::Uniform(32),
                    Some(&cond),
                    eng,
                )
                .unwrap();
            assert_eq!(h.total(), expected_hits, "engine {eng:?}");
        }
    }

    #[test]
    fn conditional_hist_engines_agree_exactly_with_shared_edges() {
        let p = provider(4000);
        let engine = HistogramEngine::new(&p);
        let cond = QueryExpr::pred("y", ValueRange::between(-10.0, 10.0));
        let edges = BinEdges::uniform(0.0, 1e11, 64).unwrap();
        let spec = BinSpec::Edges(edges);
        let xspec = BinSpec::Edges(BinEdges::uniform(0.0, 1e-3, 64).unwrap());
        let fast = engine
            .hist2d("x", "px", &xspec, &spec, Some(&cond), HistEngine::FastBit)
            .unwrap();
        let custom = engine
            .hist2d("x", "px", &xspec, &spec, Some(&cond), HistEngine::Custom)
            .unwrap();
        assert_eq!(fast.counts(), custom.counts());
    }

    #[test]
    fn hist1d_pure_index_path_matches_scan() {
        let p = provider(6000);
        let engine = HistogramEngine::new(&p);
        // Ask for edges equal to the index edges: the FastBit path must not
        // touch the raw data and still produce identical counts.
        let idx_edges = p.indexes["px"].edges().clone();
        let fast = engine
            .hist1d(
                "px",
                &BinSpec::Edges(idx_edges.clone()),
                None,
                HistEngine::FastBit,
            )
            .unwrap();
        let custom = engine
            .hist1d("px", &BinSpec::Edges(idx_edges), None, HistEngine::Custom)
            .unwrap();
        assert_eq!(fast.counts(), custom.counts());
    }

    #[test]
    fn adaptive_bins_balance_selected_mass() {
        let p = provider(10_000);
        let engine = HistogramEngine::new(&p);
        let h = engine
            .hist1d("px", &BinSpec::Adaptive(16), None, HistEngine::FastBit)
            .unwrap();
        assert!(h.num_bins() <= 16 && h.num_bins() >= 4);
        let ideal = h.total() as f64 / h.num_bins() as f64;
        for i in 0..h.num_bins() {
            assert!((h.count(i) as f64) < ideal * 3.0);
        }
    }

    #[test]
    fn empty_selection_produces_empty_histogram() {
        let p = provider(1000);
        let engine = HistogramEngine::new(&p);
        let cond = QueryExpr::pred("px", ValueRange::gt(1e30));
        let h = engine
            .hist2d(
                "x",
                "px",
                &BinSpec::Uniform(16),
                &BinSpec::Uniform(16),
                Some(&cond),
                HistEngine::FastBit,
            )
            .unwrap();
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn hist2d_pairs_shares_the_condition() {
        let p = provider(3000);
        let engine = HistogramEngine::new(&p);
        let cond = QueryExpr::pred("px", ValueRange::gt(5e10));
        let pairs = vec![
            ("x".to_string(), "px".to_string()),
            ("y".to_string(), "px".to_string()),
        ];
        let hists = engine
            .hist2d_pairs(
                &pairs,
                &BinSpec::Uniform(32),
                Some(&cond),
                HistEngine::FastBit,
            )
            .unwrap();
        assert_eq!(hists.len(), 2);
        let hits = p.columns["px"].iter().filter(|&&v| v > 5e10).count() as u64;
        assert!(hists.iter().all(|h| h.total() == hits));
    }

    #[test]
    fn unknown_column_is_an_error() {
        let p = provider(100);
        let engine = HistogramEngine::new(&p);
        assert!(engine
            .hist1d("nope", &BinSpec::Uniform(8), None, HistEngine::Custom)
            .is_err());
    }

    #[test]
    fn hist1d_par_matches_sequential_bin_for_bin() {
        let p = provider(7000);
        let engine = HistogramEngine::new(&p);
        let cond = QueryExpr::pred("y", ValueRange::between(-30.0, 30.0));
        for exec in [
            ParExec::new(1, 512),
            ParExec::new(4, 512),
            ParExec::new(4, 7001),
        ] {
            for (spec, condition) in [
                (BinSpec::Uniform(64), None),
                (BinSpec::Uniform(64), Some(&cond)),
                (BinSpec::Adaptive(32), Some(&cond)),
            ] {
                for eng in [HistEngine::FastBit, HistEngine::Custom] {
                    let seq = engine.hist1d("px", &spec, condition, eng).unwrap();
                    let par = engine
                        .hist1d_par("px", &spec, condition, eng, &exec)
                        .unwrap();
                    assert_eq!(par, seq, "{spec:?} {eng:?}");
                }
            }
        }
    }

    #[test]
    fn hist1d_par_hits_the_pure_index_fast_path() {
        let p = provider(4000);
        let engine = HistogramEngine::new(&p);
        let idx_edges = p.indexes["px"].edges().clone();
        let exec = ParExec::new(2, 256);
        let par = engine
            .hist1d_par(
                "px",
                &BinSpec::Edges(idx_edges.clone()),
                None,
                HistEngine::FastBit,
                &exec,
            )
            .unwrap();
        let seq = engine
            .hist1d("px", &BinSpec::Edges(idx_edges), None, HistEngine::FastBit)
            .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn hist2d_par_matches_sequential_bin_for_bin() {
        let p = provider(5000);
        let engine = HistogramEngine::new(&p);
        let cond = QueryExpr::pred("px", ValueRange::gt(5e10));
        let exec = ParExec::new(3, 333);
        let evaluated = engine.evaluate_condition_chunked(&cond, &exec).unwrap();
        let spec = BinSpec::Uniform(48);
        let seq_sel = engine
            .evaluate_condition(&cond, HistEngine::FastBit)
            .unwrap();
        assert_eq!(evaluated.selection.to_rows(), seq_sel.to_rows());
        let par = engine
            .hist2d_with_condition_par(
                "x",
                "px",
                &spec,
                &spec,
                Some(&evaluated),
                HistEngine::FastBit,
                &exec,
            )
            .unwrap();
        let seq = engine
            .hist2d_with_selection("x", "px", &spec, &spec, Some(&seq_sel), HistEngine::FastBit)
            .unwrap();
        assert_eq!(par.counts(), seq.counts());
        assert_eq!(par.out_of_range(), seq.out_of_range());
        // Unconditional as well.
        let par_u = engine
            .hist2d_with_condition_par("x", "px", &spec, &spec, None, HistEngine::Custom, &exec)
            .unwrap();
        let seq_u = engine
            .hist2d_with_selection("x", "px", &spec, &spec, None, HistEngine::Custom)
            .unwrap();
        assert_eq!(par_u.counts(), seq_u.counts());
    }
}
