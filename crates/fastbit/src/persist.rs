//! std-only binary persistence for the index structures.
//!
//! The paper's premise is that FastBit indexes are *built once and reused*
//! across exploration sessions; this module provides the byte-level
//! encoders/decoders that make [`BitmapIndex`] (bin edges plus the
//! WAH-compressed bitmaps, written in their already-compressed form),
//! [`IdIndex`] and [`ZoneMaps`] durable. The datastore crate's `vdx` store
//! embeds these encodings in checksummed segment files.
//!
//! Decoding is written for hostile input: every length is validated against
//! the bytes actually available *before* any allocation (no OOM on a
//! declared-but-absent gigabyte), every structural invariant the in-memory
//! types rely on is checked before construction (no panics on corrupt
//! bytes), and every failure is a typed [`PersistError`]. All integers are
//! little-endian.

use std::fmt;

use histogram::BinEdges;

use crate::index::{BitmapIndex, IdIndex};
use crate::par::{Zone, ZoneMaps};
use crate::wah::Wah;

/// Longest column/section name the decoders accept.
pub const MAX_NAME_LEN: usize = 1 << 16;

/// A typed decoding failure. Never panics, never over-allocates: `Truncated`
/// and `Oversized` fire before any buffer is reserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input ended before a declared structure was complete.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A declared count or length exceeds what the remaining bytes could
    /// possibly hold.
    Oversized {
        /// What was being read.
        what: &'static str,
        /// The declared element count or byte length.
        claimed: u64,
        /// The maximum the remaining input admits.
        limit: u64,
    },
    /// The bytes decoded structurally but violate an invariant of the target
    /// type (unsorted rows, non-monotonic boundaries, WAH words not covering
    /// the declared bit length, …).
    Invalid {
        /// What was being read.
        what: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Well-formed input with unexpected bytes left over after the structure
    /// ended — a sign the payload was assembled for a different layout.
    TrailingBytes {
        /// What was being read.
        what: &'static str,
        /// Number of unread bytes.
        remaining: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} byte(s), only {available} available"
            ),
            PersistError::Oversized {
                what,
                claimed,
                limit,
            } => write!(f, "oversized {what}: claimed {claimed}, limit {limit}"),
            PersistError::Invalid { what, detail } => write!(f, "invalid {what}: {detail}"),
            PersistError::TrailingBytes { what, remaining } => {
                write!(f, "{remaining} trailing byte(s) after {what}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Result alias for this module.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over untrusted bytes. Every read names what it is
/// reading so failures are self-describing.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the input is fully consumed.
    pub fn expect_end(&self, what: &'static str) -> PersistResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes {
                what,
                remaining: self.remaining() as u64,
            })
        }
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> PersistResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(PersistError::Truncated {
                what,
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> PersistResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> PersistResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> PersistResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a little-endian `f64` (bit pattern preserved exactly).
    pub fn f64(&mut self, what: &'static str) -> PersistResult<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Validate that `count` elements of `elem_bytes` bytes each fit in the
    /// remaining input, returning the count as `usize`. Call before any
    /// `Vec::with_capacity` so hostile counts can never drive allocation.
    pub fn check_count(
        &self,
        count: u64,
        elem_bytes: u64,
        what: &'static str,
    ) -> PersistResult<usize> {
        let limit = (self.remaining() as u64)
            .checked_div(elem_bytes)
            .unwrap_or(u64::MAX);
        if count > limit {
            return Err(PersistError::Oversized {
                what,
                claimed: count,
                limit,
            });
        }
        Ok(count as usize)
    }

    /// Read a length-prefixed UTF-8 string (length capped at
    /// [`MAX_NAME_LEN`]).
    pub fn str(&mut self, what: &'static str) -> PersistResult<String> {
        let len = self.u32(what)? as u64;
        if len > MAX_NAME_LEN as u64 {
            return Err(PersistError::Oversized {
                what,
                claimed: len,
                limit: MAX_NAME_LEN as u64,
            });
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Invalid {
            what,
            detail: "not valid UTF-8".to_string(),
        })
    }
}

// ---------------------------------------------------------------------------
// Write helpers
// ---------------------------------------------------------------------------

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64` (bit pattern preserved exactly).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Wah
// ---------------------------------------------------------------------------

/// Append one WAH vector: logical bit length, word count, then the
/// compressed words verbatim (no recompression).
pub fn encode_wah(wah: &Wah, out: &mut Vec<u8>) {
    put_u64(out, wah.len());
    let words = wah.as_words();
    put_u32(out, words.len() as u32);
    for w in words {
        put_u32(out, *w);
    }
}

/// Read one WAH vector, validating that the words cover exactly the declared
/// bit length (via [`Wah::checked_from_raw_parts`]).
pub fn read_wah(r: &mut Reader<'_>) -> PersistResult<Wah> {
    let nbits = r.u64("wah bit length")?;
    let word_count = r.u32("wah word count")? as u64;
    let word_count = r.check_count(word_count, 4, "wah words")?;
    let raw = r.take(word_count * 4, "wah words")?;
    let words: Vec<u32> = raw
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte chunk")))
        .collect();
    Wah::checked_from_raw_parts(words, nbits).map_err(|detail| PersistError::Invalid {
        what: "wah words",
        detail,
    })
}

/// Decode one WAH vector from a standalone buffer.
pub fn decode_wah(bytes: &[u8]) -> PersistResult<Wah> {
    let mut r = Reader::new(bytes);
    let wah = read_wah(&mut r)?;
    r.expect_end("wah")?;
    Ok(wah)
}

// ---------------------------------------------------------------------------
// BitmapIndex
// ---------------------------------------------------------------------------

/// Append one bitmap index: row count, the unbinned-matchable flag, bin
/// boundaries, one WAH bitmap per bin (already compressed) and the unbinned
/// row list.
pub fn encode_index(idx: &BitmapIndex, out: &mut Vec<u8>) {
    put_u64(out, idx.num_rows() as u64);
    out.push(idx.unbinned_matchable() as u8);
    let boundaries = idx.edges().boundaries();
    put_u32(out, boundaries.len() as u32);
    for b in boundaries {
        put_f64(out, *b);
    }
    put_u32(out, idx.num_bins() as u32);
    for bin in 0..idx.num_bins() {
        encode_wah(idx.bitmap(bin), out);
    }
    let unbinned = idx.unbinned_rows();
    put_u32(out, unbinned.len() as u32);
    for row in unbinned {
        put_u32(out, *row);
    }
}

/// Read one bitmap index, validating every structural invariant (boundary
/// monotonicity, bitmap count and lengths, unbinned rows strictly increasing
/// and in range) before construction.
pub fn read_index(r: &mut Reader<'_>) -> PersistResult<BitmapIndex> {
    let num_rows = r.u64("index row count")?;
    let matchable = match r.u8("index matchable flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(PersistError::Invalid {
                what: "index matchable flag",
                detail: format!("expected 0 or 1, found {other}"),
            })
        }
    };
    let boundary_count = r.u32("index boundary count")? as u64;
    let boundary_count = r.check_count(boundary_count, 8, "index boundaries")?;
    let mut boundaries = Vec::with_capacity(boundary_count);
    for _ in 0..boundary_count {
        boundaries.push(r.f64("index boundary")?);
    }
    let edges = BinEdges::from_boundaries(boundaries).map_err(|e| PersistError::Invalid {
        what: "index boundaries",
        detail: e.to_string(),
    })?;
    let bin_count = r.u32("index bin count")? as u64;
    // A serialized empty-but-present bitmap takes at least 12 bytes.
    let bin_count = r.check_count(bin_count, 12, "index bitmaps")?;
    let mut bitmaps = Vec::with_capacity(bin_count);
    for _ in 0..bin_count {
        bitmaps.push(read_wah(r)?);
    }
    let unbinned_count = r.u32("index unbinned count")? as u64;
    let unbinned_count = r.check_count(unbinned_count, 4, "index unbinned rows")?;
    let mut unbinned = Vec::with_capacity(unbinned_count);
    for _ in 0..unbinned_count {
        unbinned.push(r.u32("index unbinned row")?);
    }
    BitmapIndex::from_parts_with_matchable(edges, bitmaps, num_rows as usize, unbinned, matchable)
        .map_err(|e| PersistError::Invalid {
            what: "index structure",
            detail: e.to_string(),
        })
}

/// Decode one bitmap index from a standalone buffer.
pub fn decode_index(bytes: &[u8]) -> PersistResult<BitmapIndex> {
    let mut r = Reader::new(bytes);
    let idx = read_index(&mut r)?;
    r.expect_end("index")?;
    Ok(idx)
}

// ---------------------------------------------------------------------------
// Range (cumulative) bitmaps
// ---------------------------------------------------------------------------

/// Append one index's cumulative (range-encoded) bitmaps: bitmap count then
/// each WAH vector in its already-compressed form. The equality encoding of
/// the same index is persisted separately by [`encode_index`]; segment
/// format v2 stores the two under different section tags so a v1 reader's
/// section-kind validation naturally rejects what it cannot interpret.
pub fn encode_range_bitmaps(cumulative: &[Wah], out: &mut Vec<u8>) {
    put_u32(out, cumulative.len() as u32);
    for wah in cumulative {
        encode_wah(wah, out);
    }
}

/// Read one index's cumulative bitmaps. Each WAH vector is structurally
/// validated here; the *cumulative* property against the owning index's
/// equality bitmaps is enforced by
/// [`BitmapIndex::attach_range_bitmaps`].
pub fn read_range_bitmaps(r: &mut Reader<'_>) -> PersistResult<Vec<Wah>> {
    let count = r.u32("range bitmap count")? as u64;
    // A serialized empty-but-present bitmap takes at least 12 bytes.
    let count = r.check_count(count, 12, "range bitmaps")?;
    let mut cumulative = Vec::with_capacity(count);
    for _ in 0..count {
        cumulative.push(read_wah(r)?);
    }
    Ok(cumulative)
}

/// Decode one index's cumulative bitmaps from a standalone buffer.
pub fn decode_range_bitmaps(bytes: &[u8]) -> PersistResult<Vec<Wah>> {
    let mut r = Reader::new(bytes);
    let cumulative = read_range_bitmaps(&mut r)?;
    r.expect_end("range bitmaps")?;
    Ok(cumulative)
}

// ---------------------------------------------------------------------------
// IdIndex
// ---------------------------------------------------------------------------

/// Append one identifier index: row count, pair count, then the sorted
/// `(id, row)` pairs.
pub fn encode_id_index(idx: &IdIndex, out: &mut Vec<u8>) {
    put_u64(out, idx.num_rows() as u64);
    put_u64(out, idx.pairs().len() as u64);
    for (id, row) in idx.pairs() {
        put_u64(out, *id);
        put_u32(out, *row);
    }
}

/// Read one identifier index, validating that the pairs are sorted by id and
/// every row is within the row count.
pub fn read_id_index(r: &mut Reader<'_>) -> PersistResult<IdIndex> {
    let num_rows = r.u64("id index row count")?;
    let pair_count = r.u64("id index pair count")?;
    let pair_count = r.check_count(pair_count, 12, "id index pairs")?;
    let mut pairs = Vec::with_capacity(pair_count);
    let mut prev_id = 0u64;
    for i in 0..pair_count {
        let id = r.u64("id index id")?;
        let row = r.u32("id index row")?;
        if i > 0 && id < prev_id {
            return Err(PersistError::Invalid {
                what: "id index pairs",
                detail: "pairs are not sorted by id".to_string(),
            });
        }
        if row as u64 >= num_rows {
            return Err(PersistError::Invalid {
                what: "id index pairs",
                detail: format!("row {row} outside row count {num_rows}"),
            });
        }
        prev_id = id;
        pairs.push((id, row));
    }
    Ok(IdIndex::from_sorted_pairs(pairs, num_rows as usize))
}

/// Decode one identifier index from a standalone buffer.
pub fn decode_id_index(bytes: &[u8]) -> PersistResult<IdIndex> {
    let mut r = Reader::new(bytes);
    let idx = read_id_index(&mut r)?;
    r.expect_end("id index")?;
    Ok(idx)
}

// ---------------------------------------------------------------------------
// ZoneMaps
// ---------------------------------------------------------------------------

/// Append one column's zone maps: chunk size, row count, zone count, then
/// per-zone `(min, max, nan_count, len)`.
pub fn encode_zone_maps(maps: &ZoneMaps, out: &mut Vec<u8>) {
    put_u64(out, maps.chunk_rows() as u64);
    put_u64(out, maps.num_rows() as u64);
    put_u64(out, maps.num_chunks() as u64);
    for i in 0..maps.num_chunks() {
        let z = maps.zone(i);
        put_f64(out, z.min);
        put_f64(out, z.max);
        put_u32(out, z.nan_count);
        put_u32(out, z.len);
    }
}

/// Read one column's zone maps, validating that the zones partition the row
/// count into `chunk_rows`-sized chunks (the final chunk may be shorter).
pub fn read_zone_maps(r: &mut Reader<'_>) -> PersistResult<ZoneMaps> {
    let chunk_rows = r.u64("zone map chunk size")?;
    if chunk_rows == 0 {
        return Err(PersistError::Invalid {
            what: "zone map chunk size",
            detail: "chunk size must be at least 1".to_string(),
        });
    }
    let num_rows = r.u64("zone map row count")?;
    let zone_count = r.u64("zone map zone count")?;
    let zone_count = r.check_count(zone_count, 24, "zone map zones")?;
    if zone_count as u64 != num_rows.div_ceil(chunk_rows) {
        return Err(PersistError::Invalid {
            what: "zone map zones",
            detail: format!(
                "{zone_count} zone(s) cannot cover {num_rows} row(s) at {chunk_rows} rows/chunk"
            ),
        });
    }
    let mut zones = Vec::with_capacity(zone_count);
    let mut covered = 0u64;
    for i in 0..zone_count {
        let min = r.f64("zone min")?;
        let max = r.f64("zone max")?;
        let nan_count = r.u32("zone nan count")?;
        let len = r.u32("zone length")?;
        let expected = if i + 1 < zone_count {
            chunk_rows
        } else {
            num_rows - covered
        };
        if len as u64 != expected || nan_count > len {
            return Err(PersistError::Invalid {
                what: "zone map zones",
                detail: format!(
                    "zone {i} declares len {len} (expected {expected}) with {nan_count} NaN(s)"
                ),
            });
        }
        covered += len as u64;
        zones.push(Zone {
            min,
            max,
            nan_count,
            len,
        });
    }
    Ok(ZoneMaps::from_raw_parts(
        chunk_rows as usize,
        num_rows as usize,
        zones,
    ))
}

/// Decode one column's zone maps from a standalone buffer.
pub fn decode_zone_maps(bytes: &[u8]) -> PersistResult<ZoneMaps> {
    let mut r = Reader::new(bytes);
    let maps = read_zone_maps(&mut r)?;
    r.expect_end("zone maps")?;
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histogram::Binning;

    fn sample_index(n: usize) -> BitmapIndex {
        let mut data: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 100.0).collect();
        if n > 20 {
            data[3] = f64::NAN;
            data[9] = f64::INFINITY;
            data[15] = f64::NEG_INFINITY;
        }
        BitmapIndex::build(&data, &Binning::EqualWidth { bins: 16 }).unwrap()
    }

    #[test]
    fn wah_roundtrip_preserves_words() {
        for wah in [
            Wah::zeros(0),
            Wah::zeros(1000),
            Wah::ones(93),
            Wah::from_sorted_indices(500, [0u64, 31, 62, 499]),
        ] {
            let mut buf = Vec::new();
            encode_wah(&wah, &mut buf);
            let back = decode_wah(&buf).unwrap();
            assert_eq!(back, wah);
        }
    }

    #[test]
    fn index_roundtrip_is_exact() {
        let idx = sample_index(400);
        let mut buf = Vec::new();
        encode_index(&idx, &mut buf);
        let back = decode_index(&buf).unwrap();
        assert_eq!(back.num_rows(), idx.num_rows());
        assert_eq!(back.edges().boundaries(), idx.edges().boundaries());
        assert_eq!(back.bin_counts(), idx.bin_counts());
        assert_eq!(back.unbinned_rows(), idx.unbinned_rows());
        assert_eq!(back.unbinned_matchable(), idx.unbinned_matchable());
    }

    #[test]
    fn truncation_and_oversize_are_typed_errors() {
        let idx = sample_index(100);
        let mut buf = Vec::new();
        encode_index(&idx, &mut buf);
        for cut in 0..buf.len() {
            let err = decode_index(&buf[..cut]).unwrap_err();
            let shown = err.to_string();
            assert!(!shown.is_empty());
        }
        // A hostile declared count larger than the buffer must fail *before*
        // allocating.
        let mut hostile = Vec::new();
        put_u64(&mut hostile, 10); // num_rows
        hostile.push(0); // matchable
        put_u32(&mut hostile, u32::MAX); // boundary count
        assert!(matches!(
            decode_index(&hostile),
            Err(PersistError::Oversized { .. })
        ));
    }

    #[test]
    fn range_bitmaps_roundtrip_and_reject_garbage() {
        let idx = sample_index(400).with_range_encoding().unwrap();
        let cumulative = idx.range_bitmaps().unwrap();
        let mut buf = Vec::new();
        encode_range_bitmaps(cumulative, &mut buf);
        let back = decode_range_bitmaps(&buf).unwrap();
        assert_eq!(back, cumulative);
        // Attaching the decoded set to a structurally identical index passes
        // the cumulative-tally validation.
        let mut fresh = sample_index(400);
        fresh.attach_range_bitmaps(back).unwrap();
        assert!(fresh.has_range_encoding());
        // Truncations are typed errors, never panics.
        for cut in 0..buf.len() {
            assert!(decode_range_bitmaps(&buf[..cut]).is_err());
        }
        // Hostile count fails before allocating.
        let mut hostile = Vec::new();
        put_u32(&mut hostile, u32::MAX);
        assert!(matches!(
            decode_range_bitmaps(&hostile),
            Err(PersistError::Oversized { .. })
        ));
    }

    #[test]
    fn id_index_and_zone_maps_roundtrip() {
        let ids: Vec<u64> = (0..300u64).map(|i| (i * 31) % 997).collect();
        let idx = IdIndex::build(&ids);
        let mut buf = Vec::new();
        encode_id_index(&idx, &mut buf);
        let back = decode_id_index(&buf).unwrap();
        assert_eq!(back.pairs(), idx.pairs());
        assert_eq!(back.num_rows(), idx.num_rows());

        let data: Vec<f64> = (0..250).map(|i| i as f64 * 0.5).collect();
        let maps = ZoneMaps::build(&data, 64);
        let mut buf = Vec::new();
        encode_zone_maps(&maps, &mut buf);
        let back = decode_zone_maps(&buf).unwrap();
        assert_eq!(back, maps);
    }

    #[test]
    fn invalid_structures_are_rejected() {
        // Unsorted id pairs.
        let mut buf = Vec::new();
        put_u64(&mut buf, 5);
        put_u64(&mut buf, 2);
        put_u64(&mut buf, 9);
        put_u32(&mut buf, 0);
        put_u64(&mut buf, 3);
        put_u32(&mut buf, 1);
        assert!(matches!(
            decode_id_index(&buf),
            Err(PersistError::Invalid { .. })
        ));
        // Trailing garbage.
        let maps = ZoneMaps::build(&[1.0, 2.0, 3.0], 2);
        let mut buf = Vec::new();
        encode_zone_maps(&maps, &mut buf);
        buf.push(0);
        assert!(matches!(
            decode_zone_maps(&buf),
            Err(PersistError::TrailingBytes { .. })
        ));
    }
}
