//! Binned bitmap indexes over floating-point columns and the identifier
//! index used for particle tracking.
//!
//! Two FastBit bitmap encodings are supported side by side:
//!
//! * **Equality encoding** (always present): bit `r` of bitmap `i` is set
//!   when row `r` falls in bin `i`. A range query ORs together every bin
//!   fully inside the range — cheap for narrow ranges, linear in the number
//!   of bins spanned for wide ones.
//! * **Range encoding** (optional, see
//!   [`BitmapIndex::build_range_encoding`]): cumulative bitmap `i` covers
//!   all rows with value at most the upper edge of bin `i`. Any contiguous
//!   bin span `[a, b]` then resolves as `C[b] AND NOT C[a-1]` — at most two
//!   WAH operations regardless of how many bins the range spans.
//!
//! When both encodings are present, [`BitmapIndex::choose_encoding`] picks
//! the cheaper one per query from the compressed bitmap sizes actually
//! involved (bins spanned × bitmap bytes). Whichever encoding answers, the
//! resulting WAH selection words are bit-identical — both paths emit through
//! the canonicalizing WAH builder — a property pinned by
//! `tests/encoding_differential.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

use histogram::{BinEdges, Binning};

use crate::error::{FastBitError, Result};
use crate::query::ValueRange;
use crate::selection::Selection;
use crate::wah::Wah;

/// Which bitmap encoding answers a range predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexEncoding {
    /// One bitmap per bin; range queries OR the bins inside the range.
    Equality,
    /// Cumulative bitmaps (`C[i]` = rows in bins `0..=i`); range queries
    /// combine at most two bitmaps with `AND NOT`.
    Range,
}

/// Process-wide counters of which encoding answered index-backed range
/// predicates (the auto-choosing paths only; forced-encoding evaluations in
/// differential tests are not counted). Served by the server's `STATS` verb
/// as `enc_equality_queries` / `enc_range_queries`.
static ENC_EQUALITY_QUERIES: AtomicU64 = AtomicU64::new(0);
static ENC_RANGE_QUERIES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide encoding-selection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodingStatsSnapshot {
    /// Index-backed predicate evaluations answered via the equality encoding.
    pub equality_queries: u64,
    /// Index-backed predicate evaluations answered via the range encoding.
    pub range_queries: u64,
}

/// Snapshot the process-wide encoding-selection counters. Monotonic: the
/// counters only ever grow, so deltas between two snapshots taken around a
/// workload are meaningful even when other threads query concurrently.
pub fn encoding_stats() -> EncodingStatsSnapshot {
    EncodingStatsSnapshot {
        equality_queries: ENC_EQUALITY_QUERIES.load(Ordering::Relaxed),
        range_queries: ENC_RANGE_QUERIES.load(Ordering::Relaxed),
    }
}

/// Register the process-wide encoding-selection counters into a metrics
/// registry as `vdx_index_encoding_queries_total{encoding=…}`.
pub fn register_encoding_metrics(registry: &obs::Registry) {
    registry.counter_fn(
        "vdx_index_encoding_queries_total",
        "Index-backed predicate evaluations by chosen bitmap encoding.",
        &[("encoding", "equality")],
        || ENC_EQUALITY_QUERIES.load(Ordering::Relaxed),
    );
    registry.counter_fn(
        "vdx_index_encoding_queries_total",
        "Index-backed predicate evaluations by chosen bitmap encoding.",
        &[("encoding", "range")],
        || ENC_RANGE_QUERIES.load(Ordering::Relaxed),
    );
}

/// Count one index-backed predicate evaluation under `encoding`. The auto
/// paths ([`BitmapIndex::evaluate`] / [`BitmapIndex::evaluate_index_only`])
/// count internally; the compiled engine forces the plan-recorded encoding
/// through the `*_with` paths and notes it here so the `enc_*` STATS keep
/// moving identically.
pub(crate) fn note_encoding_query(encoding: IndexEncoding) {
    match encoding {
        IndexEncoding::Equality => &ENC_EQUALITY_QUERIES,
        IndexEncoding::Range => &ENC_RANGE_QUERIES,
    }
    .fetch_add(1, Ordering::Relaxed);
}

/// A binned, WAH-compressed bitmap index over one floating-point column.
///
/// Construction picks bin boundaries according to a [`Binning`] strategy and
/// stores one compressed bitmap per bin; bit `r` of bitmap `i` is set when
/// row `r` falls in bin `i`. Range queries OR together the bitmaps of bins
/// fully inside the range and perform a *candidate check* against the raw
/// column for the (at most two) partially covered boundary bins, exactly as
/// FastBit does for binned indexes. An optional second, range (cumulative)
/// encoding answers wide spans with at most two WAH operations; see
/// [`BitmapIndex::build_range_encoding`] and the module documentation.
///
/// ```
/// use fastbit::{BitmapIndex, IndexEncoding, ValueRange};
/// use histogram::Binning;
///
/// let data: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
/// let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 64 })
///     .unwrap()
///     .with_range_encoding()
///     .unwrap();
///
/// // A wide range spans many bins: the cost model picks the cumulative
/// // (range) encoding, which needs at most two bitmaps.
/// let wide = ValueRange::between(5.0, 95.0);
/// assert_eq!(idx.choose_encoding(&wide), IndexEncoding::Range);
///
/// // Whichever encoding answers, the selected rows are identical.
/// let hits = idx.evaluate(&wide, &data).unwrap();
/// let expected = data.iter().filter(|v| wide.contains(**v)).count() as u64;
/// assert_eq!(hits.count(), expected);
/// ```
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    edges: BinEdges,
    bitmaps: Vec<Wah>,
    num_rows: usize,
    /// Rows whose value fell outside the binned range (NaN or out of bounds).
    unbinned: Vec<u32>,
    /// Whether any unbinned row holds a non-NaN value (±∞ or an out-of-span
    /// finite value). Only those can ever satisfy a range predicate, so a
    /// NaN-only unbinned set never forces a candidate check. Conservatively
    /// `true` for indexes reassembled from persisted parts, where the raw
    /// values are not available to inspect.
    unbinned_matchable: bool,
    /// Cumulative (range-encoded) bitmaps: `range_bitmaps[i]` covers every
    /// row of bins `0..=i`. `None` until [`BitmapIndex::build_range_encoding`]
    /// (or a persisted v2 segment) attaches them.
    range_bitmaps: Option<Vec<Wah>>,
}

impl BitmapIndex {
    /// Build an index over `data` using the given binning strategy.
    pub fn build(data: &[f64], binning: &Binning) -> Result<Self> {
        let edges = BinEdges::from_strategy(data, binning)?;
        Self::build_with_edges(data, edges)
    }

    /// Build an index over `data` using pre-computed bin boundaries.
    pub fn build_with_edges(data: &[f64], edges: BinEdges) -> Result<Self> {
        let nbins = edges.num_bins();
        let mut rows_per_bin: Vec<Vec<u64>> = vec![Vec::new(); nbins];
        let mut unbinned = Vec::new();
        let mut unbinned_matchable = false;
        for (row, &v) in data.iter().enumerate() {
            match edges.locate(v) {
                Some(bin) => rows_per_bin[bin].push(row as u64),
                None => {
                    unbinned.push(row as u32);
                    unbinned_matchable |= !v.is_nan();
                }
            }
        }
        let n = data.len() as u64;
        let bitmaps = rows_per_bin
            .into_iter()
            .map(|rows| Wah::from_sorted_indices(n, rows))
            .collect();
        Ok(Self {
            edges,
            bitmaps,
            num_rows: data.len(),
            unbinned,
            unbinned_matchable,
            range_bitmaps: None,
        })
    }

    /// Reassemble an index from persisted parts (bin edges, one bitmap per
    /// bin, the indexed row count and the rows left unbinned). Used by the
    /// datastore layer when loading a sidecar index file. Whether any
    /// unbinned row could match a range predicate is unknown without the raw
    /// values, so the reassembled index is conservatively marked matchable
    /// whenever the unbinned set is non-empty.
    pub fn from_parts(
        edges: BinEdges,
        bitmaps: Vec<Wah>,
        num_rows: usize,
        unbinned: Vec<u32>,
    ) -> Result<Self> {
        let matchable = !unbinned.is_empty();
        Self::from_parts_with_matchable(edges, bitmaps, num_rows, unbinned, matchable)
    }

    /// [`BitmapIndex::from_parts`] with an explicit unbinned-matchable flag,
    /// for persistence formats that recorded the flag the original index was
    /// built with (keeping `answers_exactly` and the pure-index fast paths
    /// byte-identical across a save/load cycle).
    ///
    /// All structural invariants are validated — bitmap count versus bins,
    /// bitmap lengths versus `num_rows`, and the unbinned rows strictly
    /// increasing and in range — so hostile persisted bytes cannot construct
    /// an index whose evaluation would later panic.
    pub fn from_parts_with_matchable(
        edges: BinEdges,
        bitmaps: Vec<Wah>,
        num_rows: usize,
        unbinned: Vec<u32>,
        unbinned_matchable: bool,
    ) -> Result<Self> {
        if bitmaps.len() != edges.num_bins() {
            return Err(FastBitError::Binning(
                histogram::BinningError::ShapeMismatch {
                    expected: edges.num_bins(),
                    found: bitmaps.len(),
                },
            ));
        }
        for b in &bitmaps {
            if b.len() != num_rows as u64 {
                return Err(FastBitError::LengthMismatch {
                    left: num_rows as u64,
                    right: b.len(),
                });
            }
        }
        let in_range = unbinned.iter().all(|&r| (r as usize) < num_rows);
        let increasing = unbinned.windows(2).all(|w| w[0] < w[1]);
        if !in_range || !increasing {
            return Err(FastBitError::Execution(
                "unbinned rows must be strictly increasing and within the row count".to_string(),
            ));
        }
        Ok(Self {
            edges,
            bitmaps,
            num_rows,
            unbinned,
            unbinned_matchable,
            range_bitmaps: None,
        })
    }

    /// Bin boundaries used by the index.
    pub fn edges(&self) -> &BinEdges {
        &self.edges
    }

    /// Number of indexed rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bitmaps.len()
    }

    /// Per-bin record counts, obtained from the bitmaps alone. This is the
    /// fast path for unconditional 1D histograms whose bins coincide with
    /// (or merge) the index bins.
    pub fn bin_counts(&self) -> Vec<u64> {
        self.bitmaps.iter().map(|b| b.count_ones()).collect()
    }

    /// Rows that could not be assigned to any bin (NaN values).
    pub fn unbinned_rows(&self) -> &[u32] {
        &self.unbinned
    }

    /// Whether any unbinned row holds a non-NaN value and could therefore
    /// satisfy a range predicate (see the field documentation). Persisted by
    /// the [`crate::persist`] layer so a reloaded index keeps the exact
    /// candidate-check behaviour of the original.
    pub fn unbinned_matchable(&self) -> bool {
        self.unbinned_matchable
    }

    /// The compressed bitmap of bin `i`.
    pub fn bitmap(&self, i: usize) -> &Wah {
        &self.bitmaps[i]
    }

    /// Build the cumulative (range-encoded) bitmaps from the equality
    /// bitmaps: `C[i] = C[i-1] OR bitmap(i)`. Idempotent. The extra memory
    /// is the price of answering any bin span with at most two WAH
    /// operations; [`BitmapIndex::choose_encoding`] only picks the range
    /// encoding when its bitmaps are actually cheaper for the query at hand.
    pub fn build_range_encoding(&mut self) -> Result<()> {
        self.build_cumulative(None)?;
        Ok(())
    }

    /// [`BitmapIndex::build_range_encoding`] under a size budget: the
    /// cumulative bitmaps are kept only when their total compressed size is
    /// at most `max_ratio` times the equality bitmaps' size, and the build
    /// aborts early once the running total exceeds the budget. Returns
    /// whether the encoding was materialized.
    ///
    /// Cumulative bitmaps over *scattered* (high-entropy) columns compress
    /// poorly — the mid-range `C[i]` are literal-dense — so materializing
    /// them can cost several times the equality encoding in bytes for a
    /// win that only applies to wide ranges. Clustered or low-cardinality
    /// columns compress near 1:1 and always qualify. This is the build-time
    /// half of cost-based encoding selection; the per-query half is
    /// [`BitmapIndex::choose_encoding`].
    pub fn build_range_encoding_budgeted(&mut self, max_ratio: f64) -> Result<bool> {
        let (equality_bytes, _) = self.encoding_size_bytes();
        let budget = (equality_bytes as f64 * max_ratio.max(0.0)) as usize;
        self.build_cumulative(Some(budget))
    }

    /// Shared builder: `budget` is the maximum total compressed byte size
    /// the cumulative set may reach; `None` means unbounded.
    fn build_cumulative(&mut self, budget: Option<usize>) -> Result<bool> {
        if self.range_bitmaps.is_some() {
            return Ok(true);
        }
        let mut cumulative: Vec<Wah> = Vec::with_capacity(self.bitmaps.len());
        let mut total_bytes = 0usize;
        for (i, bitmap) in self.bitmaps.iter().enumerate() {
            let c = if i == 0 {
                // OR with an empty vector canonicalizes the words even when
                // the equality bitmap came from a persisted, potentially
                // non-canonical source.
                Wah::zeros(self.num_rows as u64).or(bitmap)?
            } else {
                cumulative[i - 1].or(bitmap)?
            };
            total_bytes += c.size_in_bytes();
            if let Some(budget) = budget {
                if total_bytes > budget {
                    return Ok(false);
                }
            }
            cumulative.push(c);
        }
        self.range_bitmaps = Some(cumulative);
        Ok(true)
    }

    /// Builder-style [`BitmapIndex::build_range_encoding`].
    pub fn with_range_encoding(mut self) -> Result<Self> {
        self.build_range_encoding()?;
        Ok(self)
    }

    /// Whether the cumulative (range) encoding is present.
    pub fn has_range_encoding(&self) -> bool {
        self.range_bitmaps.is_some()
    }

    /// The cumulative bitmaps, when the range encoding has been built.
    pub fn range_bitmaps(&self) -> Option<&[Wah]> {
        self.range_bitmaps.as_deref()
    }

    /// Attach cumulative bitmaps decoded from a persisted segment.
    ///
    /// Validation is **exact**: beyond the structural invariants (one
    /// bitmap per bin, every length equal to the row count), each supplied
    /// `C[i]` must equal `C[i-1] OR bitmap(i)` word-for-word — the same
    /// canonical form [`BitmapIndex::build_range_encoding`] produces — so a
    /// checksum-valid but semantically wrong section can never silently
    /// change query answers; it is rejected here with a typed error. The
    /// check costs one WAH OR per bin, the same as rebuilding, which stays
    /// cheap for exactly the bitmaps the store's materialization budget
    /// admits.
    pub fn attach_range_bitmaps(&mut self, cumulative: Vec<Wah>) -> Result<()> {
        if cumulative.len() != self.bitmaps.len() {
            return Err(FastBitError::Binning(
                histogram::BinningError::ShapeMismatch {
                    expected: self.bitmaps.len(),
                    found: cumulative.len(),
                },
            ));
        }
        for (i, c) in cumulative.iter().enumerate() {
            if c.len() != self.num_rows as u64 {
                return Err(FastBitError::LengthMismatch {
                    left: self.num_rows as u64,
                    right: c.len(),
                });
            }
            let expected = if i == 0 {
                Wah::zeros(self.num_rows as u64).or(&self.bitmaps[0])?
            } else {
                cumulative[i - 1].or(&self.bitmaps[i])?
            };
            if *c != expected {
                return Err(FastBitError::Execution(format!(
                    "range bitmap {i} does not equal the canonical cumulative OR of bins 0..={i}"
                )));
            }
        }
        self.range_bitmaps = Some(cumulative);
        Ok(())
    }

    /// Total compressed index size in bytes (bitmaps of both encodings plus
    /// boundaries).
    pub fn size_in_bytes(&self) -> usize {
        let (equality, range) = self.encoding_size_bytes();
        equality + range + self.edges.boundaries().len() * 8 + self.unbinned.len() * 4
    }

    /// Compressed bitmap bytes per encoding: `(equality, range)`. The range
    /// component is zero until the cumulative bitmaps are built.
    pub fn encoding_size_bytes(&self) -> (usize, usize) {
        let equality = self.bitmaps.iter().map(Wah::size_in_bytes).sum::<usize>();
        let range = self
            .range_bitmaps
            .as_deref()
            .map_or(0, |c| c.iter().map(Wah::size_in_bytes).sum());
        (equality, range)
    }

    /// Classify the index bins against a value range.
    ///
    /// Returns `(full, partial)` where `full` are bins entirely inside the
    /// range and `partial` are bins that straddle a range endpoint and
    /// therefore require a candidate check.
    fn classify_bins(&self, range: &ValueRange) -> (Vec<usize>, Vec<usize>) {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        for i in 0..self.num_bins() {
            let (lo, hi) = self.edges.bin_range(i);
            let last = i + 1 == self.num_bins();
            // The bin covers values in [lo, hi) except the last bin which is
            // [lo, hi].
            let bin_min = lo;
            let bin_max = if last { hi } else { prev_toward(hi, lo) };
            let min_in = range.contains(bin_min);
            let max_in = range.contains(bin_max);
            if min_in && max_in && range.contains_interval(bin_min, bin_max) {
                full.push(i);
            } else if range.overlaps_interval(bin_min, bin_max) {
                partial.push(i);
            }
        }
        (full, partial)
    }

    /// Whether `range` could match a value that fell outside the binned
    /// range. Unbinned rows hold NaN (never matches) or values below/above
    /// the boundary span (e.g. ±∞ under data-derived edges); those can only
    /// match when the range extends past the corresponding outer boundary.
    fn range_may_match_unbinned(&self, range: &ValueRange) -> bool {
        if !self.unbinned_matchable {
            return false;
        }
        let below = match range.min {
            None => true,
            Some(m) => m < self.edges.lo(),
        };
        let above = match range.max {
            None => true,
            Some(m) => m > self.edges.hi(),
        };
        below || above
    }

    /// Pick the cheaper encoding for `range` from the compressed sizes of
    /// the bitmaps each encoding would actually combine: the equality path
    /// ORs one bitmap per fully covered bin, while the range path combines
    /// at most two cumulative bitmaps (`C[b] AND NOT C[a-1]`). The boundary
    /// candidate bins cost the same either way (both paths read the per-bin
    /// equality bitmaps), so they cancel out of the comparison. Always
    /// [`IndexEncoding::Equality`] when the cumulative bitmaps are absent.
    pub fn choose_encoding(&self, range: &ValueRange) -> IndexEncoding {
        let (full, _) = self.classify_bins(range);
        self.choose_encoding_classified(&full)
    }

    /// [`BitmapIndex::choose_encoding`] over an already computed full-bin
    /// classification, so the auto evaluation paths classify once per query.
    fn choose_encoding_classified(&self, full: &[usize]) -> IndexEncoding {
        let Some(cumulative) = self.range_bitmaps.as_deref() else {
            return IndexEncoding::Equality;
        };
        let (Some(&a), Some(&b)) = (full.first(), full.last()) else {
            return IndexEncoding::Equality;
        };
        if b - a + 1 != full.len() {
            // Full bins of an interval range are always contiguous; fall
            // back to the encoding that handles any shape, defensively.
            return IndexEncoding::Equality;
        }
        let equality_cost: usize = full.iter().map(|&i| self.bitmaps[i].size_in_bytes()).sum();
        let range_cost = cumulative[b].size_in_bytes()
            + if a > 0 {
                cumulative[a - 1].size_in_bytes()
            } else {
                0
            };
        if range_cost < equality_cost {
            IndexEncoding::Range
        } else {
            IndexEncoding::Equality
        }
    }

    /// Evaluate a range condition using only the index, without access to the
    /// raw column. Returns `(hits, candidates)`: `hits` are rows guaranteed
    /// to satisfy the condition; `candidates` are rows that may or may not
    /// satisfy it — boundary-bin rows, plus the unbinned rows whenever the
    /// range reaches beyond the binned span (the differential suite caught
    /// ±∞ rows being silently dropped here). The encoding is chosen by
    /// [`BitmapIndex::choose_encoding`] and recorded in the process-wide
    /// [`encoding_stats`] counters.
    pub fn evaluate_index_only(&self, range: &ValueRange) -> Result<(Selection, Selection)> {
        let (full, partial) = self.classify_bins(range);
        let encoding = self.choose_encoding_classified(&full);
        match encoding {
            IndexEncoding::Equality => &ENC_EQUALITY_QUERIES,
            IndexEncoding::Range => &ENC_RANGE_QUERIES,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.evaluate_classified(range, encoding, full, partial)
    }

    /// [`BitmapIndex::evaluate_index_only`] with the encoding forced — the
    /// handle the differential suites and benchmarks use to pin both paths
    /// against each other. Forcing [`IndexEncoding::Range`] without built
    /// cumulative bitmaps is an error. The returned selections are
    /// bit-identical across encodings: both emit through the canonicalizing
    /// WAH builder, and the logical row sets are equal by construction.
    pub fn evaluate_index_only_with(
        &self,
        range: &ValueRange,
        encoding: IndexEncoding,
    ) -> Result<(Selection, Selection)> {
        let (full, partial) = self.classify_bins(range);
        self.evaluate_classified(range, encoding, full, partial)
    }

    /// Shared evaluation body over an already computed bin classification.
    fn evaluate_classified(
        &self,
        range: &ValueRange,
        encoding: IndexEncoding,
        full: Vec<usize>,
        partial: Vec<usize>,
    ) -> Result<(Selection, Selection)> {
        let n = self.num_rows as u64;
        let hits = match encoding {
            IndexEncoding::Equality => {
                let mut hits = Wah::zeros(n);
                for i in full {
                    hits = hits.or(&self.bitmaps[i])?;
                }
                hits
            }
            IndexEncoding::Range => {
                let cumulative = self.range_bitmaps.as_deref().ok_or_else(|| {
                    FastBitError::Execution(
                        "range encoding requested but not built for this index".to_string(),
                    )
                })?;
                match (full.first().copied(), full.last().copied()) {
                    (Some(a), Some(b)) if b - a + 1 == full.len() => {
                        if a == 0 {
                            // OR with zeros canonicalizes persisted words, so
                            // the output equals the equality path bit-for-bit.
                            Wah::zeros(n).or(&cumulative[b])?
                        } else {
                            cumulative[b].and_not(&cumulative[a - 1])?
                        }
                    }
                    _ => {
                        // No fully covered bin (or a non-contiguous span,
                        // which interval ranges cannot produce): nothing to
                        // subtract — same empty hit set as the equality path.
                        let mut hits = Wah::zeros(n);
                        for i in full {
                            hits = hits.or(&self.bitmaps[i])?;
                        }
                        hits
                    }
                }
            }
        };
        // Boundary-bin candidates come from the per-bin equality bitmaps in
        // both encodings (at most two bins), so the candidate set — and the
        // unbinned-row handling — is shared verbatim.
        let mut candidates = Wah::zeros(n);
        for i in partial {
            candidates = candidates.or(&self.bitmaps[i])?;
        }
        if !self.unbinned.is_empty() && self.range_may_match_unbinned(range) {
            let unbinned = Wah::from_sorted_indices(n, self.unbinned.iter().map(|&r| r as u64));
            candidates = candidates.or(&unbinned)?;
        }
        Ok((Selection::from_wah(hits), Selection::from_wah(candidates)))
    }

    /// Evaluate a range condition exactly, using the raw column for the
    /// candidate check on boundary bins. The encoding is cost-selected per
    /// query; see [`BitmapIndex::choose_encoding`].
    pub fn evaluate(&self, range: &ValueRange, data: &[f64]) -> Result<Selection> {
        if data.len() != self.num_rows {
            return Err(FastBitError::RowCountMismatch {
                index_rows: self.num_rows,
                data_rows: data.len(),
            });
        }
        let (hits, candidates) = self.evaluate_index_only(range)?;
        self.resolve_candidates(hits, candidates, range, data)
    }

    /// [`BitmapIndex::evaluate`] with the encoding forced (not counted in
    /// [`encoding_stats`]); the differential and benchmark harness entry.
    pub fn evaluate_with(
        &self,
        range: &ValueRange,
        data: &[f64],
        encoding: IndexEncoding,
    ) -> Result<Selection> {
        if data.len() != self.num_rows {
            return Err(FastBitError::RowCountMismatch {
                index_rows: self.num_rows,
                data_rows: data.len(),
            });
        }
        let (hits, candidates) = self.evaluate_index_only_with(range, encoding)?;
        self.resolve_candidates(hits, candidates, range, data)
    }

    /// Confirm candidate rows against the raw column and fold them into the
    /// guaranteed hits.
    fn resolve_candidates(
        &self,
        hits: Selection,
        candidates: Selection,
        range: &ValueRange,
        data: &[f64],
    ) -> Result<Selection> {
        if candidates.is_none_selected() {
            return Ok(hits);
        }
        let confirmed: Vec<usize> = candidates
            .iter_rows()
            .filter(|&r| range.contains(data[r]))
            .collect();
        let confirmed = Selection::from_sorted_rows(self.num_rows, confirmed);
        hits.or(&confirmed)
    }

    /// True when the range endpoints coincide with bin boundaries, i.e. the
    /// query can be answered exactly from the index alone (the reason the
    /// paper builds indexes with low-precision bin boundaries). A range that
    /// could match unbinned (out-of-span) rows needs the raw column too.
    pub fn answers_exactly(&self, range: &ValueRange) -> bool {
        let (_, partial) = self.classify_bins(range);
        partial.is_empty() && (self.unbinned.is_empty() || !self.range_may_match_unbinned(range))
    }
}

/// Largest representable f64 strictly less than `x` (bounded below by `lo`).
///
/// Must use [`f64::next_down`]: naively decrementing the bit pattern moves
/// *toward zero* for negative values, which would make a bin's computed
/// maximum exceed its upper boundary and misclassify boundary bins on
/// columns with negative values.
fn prev_toward(x: f64, lo: f64) -> f64 {
    x.next_down().max(lo)
}

/// An index over the particle-identifier column.
///
/// Answers `ID IN (id_1 … id_n)` queries — the backbone of particle tracking
/// across timesteps — in time proportional to the size of the query set and
/// the number of rows found, rather than to the dataset size.
#[derive(Debug, Clone)]
pub struct IdIndex {
    /// `(id, row)` pairs sorted by id.
    sorted: Vec<(u64, u32)>,
    num_rows: usize,
}

impl IdIndex {
    /// Build an identifier index over `ids` (one entry per row).
    pub fn build(ids: &[u64]) -> Self {
        let mut sorted: Vec<(u64, u32)> = ids
            .iter()
            .enumerate()
            .map(|(row, &id)| (id, row as u32))
            .collect();
        sorted.sort_unstable();
        Self {
            sorted,
            num_rows: ids.len(),
        }
    }

    /// Number of indexed rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Rows whose identifier equals `id` (usually zero or one).
    pub fn rows_for(&self, id: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.sorted.partition_point(|&(v, _)| v < id);
        self.sorted[start..]
            .iter()
            .take_while(move |&&(v, _)| v == id)
            .map(|&(_, row)| row as usize)
    }

    /// The sorted `(id, row)` pairs backing the index, for serialization.
    pub fn pairs(&self) -> &[(u64, u32)] {
        &self.sorted
    }

    /// Reconstruct an index from pairs previously obtained via
    /// [`IdIndex::pairs`]. The pairs must be sorted by id.
    pub fn from_sorted_pairs(sorted: Vec<(u64, u32)>, num_rows: usize) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
        Self { sorted, num_rows }
    }

    /// Evaluate `ID IN (query_ids)` and return the matching rows.
    pub fn select(&self, query_ids: &[u64]) -> Selection {
        let mut rows: Vec<usize> = query_ids.iter().flat_map(|&id| self.rows_for(id)).collect();
        rows.sort_unstable();
        rows.dedup();
        Selection::from_sorted_rows(self.num_rows, rows)
    }

    /// Approximate index size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.sorted.len() * std::mem::size_of::<(u64, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ValueRange;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample_column(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect()
    }

    #[test]
    fn bin_counts_sum_to_rows() {
        let data = sample_column(10_000, 1);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 64 }).unwrap();
        assert_eq!(idx.num_bins(), 64);
        assert_eq!(idx.bin_counts().iter().sum::<u64>(), 10_000);
        assert!(idx.unbinned_rows().is_empty());
    }

    #[test]
    fn nan_rows_are_unbinned() {
        let mut data = sample_column(100, 2);
        data[10] = f64::NAN;
        data[20] = f64::NAN;
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 8 }).unwrap();
        assert_eq!(idx.unbinned_rows(), &[10, 20]);
        assert_eq!(idx.bin_counts().iter().sum::<u64>(), 98);
    }

    #[test]
    fn range_query_matches_scan() {
        let data = sample_column(20_000, 3);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 100 }).unwrap();
        for range in [
            ValueRange::gt(12.3),
            ValueRange::lt(-55.5),
            ValueRange::ge(0.0),
            ValueRange::le(99.99),
            ValueRange::between(-10.0, 10.0),
        ] {
            let from_index = idx.evaluate(&range, &data).unwrap();
            let from_scan: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, &v)| range.contains(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(from_index.to_rows(), from_scan, "range {range:?}");
        }
    }

    #[test]
    fn index_only_evaluation_brackets_exact_answer() {
        let data = sample_column(5_000, 4);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 32 }).unwrap();
        let range = ValueRange::gt(7.77);
        let (hits, candidates) = idx.evaluate_index_only(&range).unwrap();
        let exact = idx.evaluate(&range, &data).unwrap();
        // hits ⊆ exact ⊆ hits ∪ candidates
        assert!(hits.and_not(&exact).unwrap().is_none_selected());
        let upper = hits.or(&candidates).unwrap();
        assert!(exact.and_not(&upper).unwrap().is_none_selected());
        assert!(!idx.answers_exactly(&range));
    }

    #[test]
    fn boundary_aligned_query_is_answered_exactly_from_index() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
        let edges = BinEdges::uniform(0.0, 100.0, 10).unwrap();
        let idx = BitmapIndex::build_with_edges(&data, edges).unwrap();
        let range = ValueRange::ge(30.0);
        assert!(idx.answers_exactly(&range));
        let (hits, candidates) = idx.evaluate_index_only(&range).unwrap();
        assert!(candidates.is_none_selected());
        assert_eq!(hits.count(), 700);
    }

    #[test]
    fn equal_weight_index_also_answers_correctly() {
        let data = sample_column(8_000, 5);
        let idx = BitmapIndex::build(&data, &Binning::EqualWeight { bins: 50 }).unwrap();
        let range = ValueRange::between(-20.0, 35.0);
        let got = idx.evaluate(&range, &data).unwrap();
        let expected = data.iter().filter(|&&v| range.contains(v)).count() as u64;
        assert_eq!(got.count(), expected);
    }

    #[test]
    fn index_size_is_reported() {
        let data = sample_column(10_000, 6);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 128 }).unwrap();
        assert!(idx.size_in_bytes() > 0);
    }

    #[test]
    fn empty_range_selects_nothing() {
        let data = sample_column(1_000, 7);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 16 }).unwrap();
        let got = idx.evaluate(&ValueRange::gt(1e9), &data).unwrap();
        assert!(got.is_none_selected());
    }

    #[test]
    fn unbinned_infinities_are_candidate_checked() {
        // Regression: ±∞ rows fall outside data-derived edges and land in
        // the unbinned list; range queries that extend past the boundary
        // span must still find them (the par differential suite caught the
        // indexed path silently dropping them).
        let mut data = sample_column(2_000, 8);
        data[3] = f64::INFINITY;
        data[7] = f64::NEG_INFINITY;
        data[11] = f64::NAN;
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 32 }).unwrap();
        assert_eq!(idx.unbinned_rows(), &[3, 7, 11]);
        for range in [
            ValueRange::gt(50.0),             // must include row 3 (+inf)
            ValueRange::lt(-50.0),            // must include row 7 (-inf)
            ValueRange::all(),                // both, never the NaN row
            ValueRange::between(-10.0, 10.0), // neither
        ] {
            let from_index = idx.evaluate(&range, &data).unwrap();
            let from_scan: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, &v)| range.contains(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(from_index.to_rows(), from_scan, "range {range:?}");
        }
        // Unbounded ranges can match unbinned rows → not answerable from the
        // index alone; a range fully inside the span still is (when aligned).
        assert!(!idx.answers_exactly(&ValueRange::all()));
        let (lo, hi) = (idx.edges().lo(), idx.edges().hi());
        assert!(idx.answers_exactly(&ValueRange::between_inclusive(lo, hi)));

        // A NaN-only unbinned set can never match, so it keeps the
        // pure-index paths: no candidate check even for unbounded ranges.
        let mut nan_only = sample_column(500, 9);
        nan_only[42] = f64::NAN;
        let idx = BitmapIndex::build(&nan_only, &Binning::EqualWidth { bins: 8 }).unwrap();
        assert_eq!(idx.unbinned_rows(), &[42]);
        assert!(idx.answers_exactly(&ValueRange::all()));
        let (_, candidates) = idx.evaluate_index_only(&ValueRange::all()).unwrap();
        assert!(candidates.is_none_selected());
    }

    #[test]
    fn range_encoding_answers_identically_to_equality() {
        let mut data = sample_column(5_000, 11);
        data[7] = f64::NAN;
        data[13] = f64::INFINITY;
        data[17] = f64::NEG_INFINITY;
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 64 })
            .unwrap()
            .with_range_encoding()
            .unwrap();
        assert!(idx.has_range_encoding());
        for range in [
            ValueRange::all(),
            ValueRange::gt(-90.0),
            ValueRange::lt(90.0),
            ValueRange::between(-80.0, 80.0),
            ValueRange::between_inclusive(-1.0, 1.0),
            ValueRange::gt(1e9),
        ] {
            let (eq_hits, eq_cand) = idx
                .evaluate_index_only_with(&range, IndexEncoding::Equality)
                .unwrap();
            let (rg_hits, rg_cand) = idx
                .evaluate_index_only_with(&range, IndexEncoding::Range)
                .unwrap();
            // Bit-identical WAH words, not just equal row sets.
            assert_eq!(eq_hits.as_wah(), rg_hits.as_wah(), "hits for {range:?}");
            assert_eq!(eq_cand.as_wah(), rg_cand.as_wah(), "candidates {range:?}");
            let exact_eq = idx
                .evaluate_with(&range, &data, IndexEncoding::Equality)
                .unwrap();
            let exact_rg = idx
                .evaluate_with(&range, &data, IndexEncoding::Range)
                .unwrap();
            assert_eq!(exact_eq.as_wah(), exact_rg.as_wah(), "exact for {range:?}");
            let from_scan: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, &v)| range.contains(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(exact_rg.to_rows(), from_scan, "scan oracle for {range:?}");
        }
    }

    #[test]
    fn cost_model_prefers_range_on_wide_spans() {
        let data: Vec<f64> = (0..20_000).map(|i| (i % 1000) as f64).collect();
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 256 })
            .unwrap()
            .with_range_encoding()
            .unwrap();
        // Spans hundreds of bins: two cumulative bitmaps beat ~250 ORs.
        assert_eq!(
            idx.choose_encoding(&ValueRange::gt(10.0)),
            IndexEncoding::Range
        );
        // Spans at most a couple of bins: the per-bin bitmaps are cheaper.
        assert_eq!(
            idx.choose_encoding(&ValueRange::between(500.0, 501.0)),
            IndexEncoding::Equality
        );
        // Without the cumulative bitmaps there is nothing to choose.
        let plain = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 256 }).unwrap();
        assert_eq!(
            plain.choose_encoding(&ValueRange::gt(10.0)),
            IndexEncoding::Equality
        );
        assert!(matches!(
            plain.evaluate_index_only_with(&ValueRange::gt(10.0), IndexEncoding::Range),
            Err(FastBitError::Execution(_))
        ));
    }

    #[test]
    fn auto_evaluation_moves_the_encoding_counters() {
        let data: Vec<f64> = (0..5_000).map(|i| (i % 500) as f64).collect();
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 128 })
            .unwrap()
            .with_range_encoding()
            .unwrap();
        let before = encoding_stats();
        idx.evaluate(&ValueRange::gt(1.0), &data).unwrap(); // wide -> range
        idx.evaluate(&ValueRange::between(250.0, 251.0), &data) // narrow -> equality
            .unwrap();
        let after = encoding_stats();
        assert!(after.range_queries > before.range_queries);
        assert!(after.equality_queries > before.equality_queries);
    }

    #[test]
    fn budgeted_range_build_skips_incompressible_columns() {
        // A clustered ramp: cumulative bitmaps are prefix fills, near 1:1.
        let ramp: Vec<f64> = (0..4_000).map(|i| i as f64).collect();
        let mut clustered = BitmapIndex::build(&ramp, &Binning::EqualWidth { bins: 64 }).unwrap();
        assert!(clustered.build_range_encoding_budgeted(2.0).unwrap());
        assert!(clustered.has_range_encoding());

        // Scattered random data at fine binning (the store's regime): the
        // per-bin equality bitmaps are sparse and compress well, but the
        // mid-range cumulative bitmaps are literal-dense — several times
        // the equality bytes, over budget.
        let scattered = sample_column(4_000, 13);
        let mut idx = BitmapIndex::build(&scattered, &Binning::EqualWidth { bins: 256 }).unwrap();
        assert!(!idx.build_range_encoding_budgeted(2.0).unwrap());
        assert!(!idx.has_range_encoding());
        // The unbudgeted build still materializes it on request.
        idx.build_range_encoding().unwrap();
        assert!(idx.has_range_encoding());
        let (eq, rg) = idx.encoding_size_bytes();
        assert!(rg as f64 > eq as f64 * 2.0, "eq {eq} rg {rg}");
        // Idempotence: a budgeted call on an already-built index keeps it.
        assert!(idx.build_range_encoding_budgeted(0.1).unwrap());
        assert!(idx.has_range_encoding());
    }

    #[test]
    fn attach_range_bitmaps_validates_structure() {
        let data = sample_column(600, 12);
        let dual = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 8 })
            .unwrap()
            .with_range_encoding()
            .unwrap();
        let cumulative: Vec<Wah> = dual.range_bitmaps().unwrap().to_vec();

        // A fresh index accepts the genuine cumulative set.
        let mut idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 8 }).unwrap();
        idx.attach_range_bitmaps(cumulative.clone()).unwrap();
        assert!(idx.has_range_encoding());
        let (eq_bytes, rg_bytes) = idx.encoding_size_bytes();
        assert!(eq_bytes > 0 && rg_bytes > 0);
        assert!(idx.size_in_bytes() >= eq_bytes + rg_bytes);

        // Wrong count, wrong length, and a broken cumulative tally all fail.
        let mut idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 8 }).unwrap();
        assert!(idx.attach_range_bitmaps(cumulative[..3].to_vec()).is_err());
        let mut short = cumulative.clone();
        short[2] = Wah::zeros(10);
        assert!(idx.attach_range_bitmaps(short).is_err());
        let mut non_cumulative = cumulative.clone();
        non_cumulative[3] = non_cumulative[2].clone();
        assert!(idx.attach_range_bitmaps(non_cumulative).is_err());

        // Same popcounts, wrong bit positions: move one set row of C[2] to a
        // row that is not set. A count-only tally would accept this; the
        // exact word-level validation must reject it.
        let mut moved = cumulative.clone();
        let rows: Vec<u64> = moved[2].iter_ones().collect();
        let absent = (0..moved[2].len())
            .find(|r| !rows.contains(r))
            .expect("some row outside C[2]");
        let mut new_rows: Vec<u64> = rows[1..].to_vec();
        new_rows.push(absent);
        new_rows.sort_unstable();
        moved[2] = Wah::from_sorted_indices(moved[2].len(), new_rows);
        assert!(idx.attach_range_bitmaps(moved).is_err());
        assert!(!idx.has_range_encoding());
    }

    #[test]
    fn id_index_finds_rows_proportional_to_query() {
        let ids: Vec<u64> = (0..50_000u64).map(|i| i * 7 + 13).collect();
        let idx = IdIndex::build(&ids);
        let query: Vec<u64> = vec![13, 21, 7 * 100 + 13, 7 * 49_999 + 13];
        let sel = idx.select(&query);
        // id 21 does not exist; the others map to rows 0, 100, 49_999.
        assert_eq!(sel.to_rows(), vec![0, 100, 49_999]);
    }

    #[test]
    fn id_index_handles_duplicates_and_empty_query() {
        let ids = vec![5u64, 9, 5, 7, 9];
        let idx = IdIndex::build(&ids);
        assert_eq!(idx.rows_for(5).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(idx.rows_for(9).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(idx.rows_for(6).count(), 0);
        assert!(idx.select(&[]).is_none_selected());
        assert_eq!(idx.select(&[5, 5, 9]).to_rows(), vec![0, 1, 2, 4]);
    }
}
