//! Binned bitmap indexes over floating-point columns and the identifier
//! index used for particle tracking.

use histogram::{BinEdges, Binning};

use crate::error::{FastBitError, Result};
use crate::query::ValueRange;
use crate::selection::Selection;
use crate::wah::Wah;

/// A binned, WAH-compressed bitmap index over one floating-point column.
///
/// Construction picks bin boundaries according to a [`Binning`] strategy and
/// stores one compressed bitmap per bin; bit `r` of bitmap `i` is set when
/// row `r` falls in bin `i`. Range queries OR together the bitmaps of bins
/// fully inside the range and perform a *candidate check* against the raw
/// column for the (at most two) partially covered boundary bins, exactly as
/// FastBit does for binned indexes.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    edges: BinEdges,
    bitmaps: Vec<Wah>,
    num_rows: usize,
    /// Rows whose value fell outside the binned range (NaN or out of bounds).
    unbinned: Vec<u32>,
    /// Whether any unbinned row holds a non-NaN value (±∞ or an out-of-span
    /// finite value). Only those can ever satisfy a range predicate, so a
    /// NaN-only unbinned set never forces a candidate check. Conservatively
    /// `true` for indexes reassembled from persisted parts, where the raw
    /// values are not available to inspect.
    unbinned_matchable: bool,
}

impl BitmapIndex {
    /// Build an index over `data` using the given binning strategy.
    pub fn build(data: &[f64], binning: &Binning) -> Result<Self> {
        let edges = BinEdges::from_strategy(data, binning)?;
        Self::build_with_edges(data, edges)
    }

    /// Build an index over `data` using pre-computed bin boundaries.
    pub fn build_with_edges(data: &[f64], edges: BinEdges) -> Result<Self> {
        let nbins = edges.num_bins();
        let mut rows_per_bin: Vec<Vec<u64>> = vec![Vec::new(); nbins];
        let mut unbinned = Vec::new();
        let mut unbinned_matchable = false;
        for (row, &v) in data.iter().enumerate() {
            match edges.locate(v) {
                Some(bin) => rows_per_bin[bin].push(row as u64),
                None => {
                    unbinned.push(row as u32);
                    unbinned_matchable |= !v.is_nan();
                }
            }
        }
        let n = data.len() as u64;
        let bitmaps = rows_per_bin
            .into_iter()
            .map(|rows| Wah::from_sorted_indices(n, rows))
            .collect();
        Ok(Self {
            edges,
            bitmaps,
            num_rows: data.len(),
            unbinned,
            unbinned_matchable,
        })
    }

    /// Reassemble an index from persisted parts (bin edges, one bitmap per
    /// bin, the indexed row count and the rows left unbinned). Used by the
    /// datastore layer when loading a sidecar index file. Whether any
    /// unbinned row could match a range predicate is unknown without the raw
    /// values, so the reassembled index is conservatively marked matchable
    /// whenever the unbinned set is non-empty.
    pub fn from_parts(
        edges: BinEdges,
        bitmaps: Vec<Wah>,
        num_rows: usize,
        unbinned: Vec<u32>,
    ) -> Result<Self> {
        let matchable = !unbinned.is_empty();
        Self::from_parts_with_matchable(edges, bitmaps, num_rows, unbinned, matchable)
    }

    /// [`BitmapIndex::from_parts`] with an explicit unbinned-matchable flag,
    /// for persistence formats that recorded the flag the original index was
    /// built with (keeping `answers_exactly` and the pure-index fast paths
    /// byte-identical across a save/load cycle).
    ///
    /// All structural invariants are validated — bitmap count versus bins,
    /// bitmap lengths versus `num_rows`, and the unbinned rows strictly
    /// increasing and in range — so hostile persisted bytes cannot construct
    /// an index whose evaluation would later panic.
    pub fn from_parts_with_matchable(
        edges: BinEdges,
        bitmaps: Vec<Wah>,
        num_rows: usize,
        unbinned: Vec<u32>,
        unbinned_matchable: bool,
    ) -> Result<Self> {
        if bitmaps.len() != edges.num_bins() {
            return Err(FastBitError::Binning(
                histogram::BinningError::ShapeMismatch {
                    expected: edges.num_bins(),
                    found: bitmaps.len(),
                },
            ));
        }
        for b in &bitmaps {
            if b.len() != num_rows as u64 {
                return Err(FastBitError::LengthMismatch {
                    left: num_rows as u64,
                    right: b.len(),
                });
            }
        }
        let in_range = unbinned.iter().all(|&r| (r as usize) < num_rows);
        let increasing = unbinned.windows(2).all(|w| w[0] < w[1]);
        if !in_range || !increasing {
            return Err(FastBitError::Execution(
                "unbinned rows must be strictly increasing and within the row count".to_string(),
            ));
        }
        Ok(Self {
            edges,
            bitmaps,
            num_rows,
            unbinned,
            unbinned_matchable,
        })
    }

    /// Bin boundaries used by the index.
    pub fn edges(&self) -> &BinEdges {
        &self.edges
    }

    /// Number of indexed rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bitmaps.len()
    }

    /// Per-bin record counts, obtained from the bitmaps alone. This is the
    /// fast path for unconditional 1D histograms whose bins coincide with
    /// (or merge) the index bins.
    pub fn bin_counts(&self) -> Vec<u64> {
        self.bitmaps.iter().map(|b| b.count_ones()).collect()
    }

    /// Rows that could not be assigned to any bin (NaN values).
    pub fn unbinned_rows(&self) -> &[u32] {
        &self.unbinned
    }

    /// Whether any unbinned row holds a non-NaN value and could therefore
    /// satisfy a range predicate (see the field documentation). Persisted by
    /// the [`crate::persist`] layer so a reloaded index keeps the exact
    /// candidate-check behaviour of the original.
    pub fn unbinned_matchable(&self) -> bool {
        self.unbinned_matchable
    }

    /// The compressed bitmap of bin `i`.
    pub fn bitmap(&self, i: usize) -> &Wah {
        &self.bitmaps[i]
    }

    /// Total compressed index size in bytes (bitmaps plus boundaries).
    pub fn size_in_bytes(&self) -> usize {
        self.bitmaps.iter().map(Wah::size_in_bytes).sum::<usize>()
            + self.edges.boundaries().len() * 8
            + self.unbinned.len() * 4
    }

    /// Classify the index bins against a value range.
    ///
    /// Returns `(full, partial)` where `full` are bins entirely inside the
    /// range and `partial` are bins that straddle a range endpoint and
    /// therefore require a candidate check.
    fn classify_bins(&self, range: &ValueRange) -> (Vec<usize>, Vec<usize>) {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        for i in 0..self.num_bins() {
            let (lo, hi) = self.edges.bin_range(i);
            let last = i + 1 == self.num_bins();
            // The bin covers values in [lo, hi) except the last bin which is
            // [lo, hi].
            let bin_min = lo;
            let bin_max = if last { hi } else { prev_toward(hi, lo) };
            let min_in = range.contains(bin_min);
            let max_in = range.contains(bin_max);
            if min_in && max_in && range.contains_interval(bin_min, bin_max) {
                full.push(i);
            } else if range.overlaps_interval(bin_min, bin_max) {
                partial.push(i);
            }
        }
        (full, partial)
    }

    /// Whether `range` could match a value that fell outside the binned
    /// range. Unbinned rows hold NaN (never matches) or values below/above
    /// the boundary span (e.g. ±∞ under data-derived edges); those can only
    /// match when the range extends past the corresponding outer boundary.
    fn range_may_match_unbinned(&self, range: &ValueRange) -> bool {
        if !self.unbinned_matchable {
            return false;
        }
        let below = match range.min {
            None => true,
            Some(m) => m < self.edges.lo(),
        };
        let above = match range.max {
            None => true,
            Some(m) => m > self.edges.hi(),
        };
        below || above
    }

    /// Evaluate a range condition using only the index, without access to the
    /// raw column. Returns `(hits, candidates)`: `hits` are rows guaranteed
    /// to satisfy the condition; `candidates` are rows that may or may not
    /// satisfy it — boundary-bin rows, plus the unbinned rows whenever the
    /// range reaches beyond the binned span (the differential suite caught
    /// ±∞ rows being silently dropped here).
    pub fn evaluate_index_only(&self, range: &ValueRange) -> Result<(Selection, Selection)> {
        let (full, partial) = self.classify_bins(range);
        let n = self.num_rows as u64;
        let mut hits = Wah::zeros(n);
        for i in full {
            hits = hits.or(&self.bitmaps[i])?;
        }
        let mut candidates = Wah::zeros(n);
        for i in partial {
            candidates = candidates.or(&self.bitmaps[i])?;
        }
        if !self.unbinned.is_empty() && self.range_may_match_unbinned(range) {
            let unbinned = Wah::from_sorted_indices(n, self.unbinned.iter().map(|&r| r as u64));
            candidates = candidates.or(&unbinned)?;
        }
        Ok((Selection::from_wah(hits), Selection::from_wah(candidates)))
    }

    /// Evaluate a range condition exactly, using the raw column for the
    /// candidate check on boundary bins.
    pub fn evaluate(&self, range: &ValueRange, data: &[f64]) -> Result<Selection> {
        if data.len() != self.num_rows {
            return Err(FastBitError::RowCountMismatch {
                index_rows: self.num_rows,
                data_rows: data.len(),
            });
        }
        let (hits, candidates) = self.evaluate_index_only(range)?;
        if candidates.is_none_selected() {
            return Ok(hits);
        }
        let confirmed: Vec<usize> = candidates
            .iter_rows()
            .filter(|&r| range.contains(data[r]))
            .collect();
        let confirmed = Selection::from_sorted_rows(self.num_rows, confirmed);
        hits.or(&confirmed)
    }

    /// True when the range endpoints coincide with bin boundaries, i.e. the
    /// query can be answered exactly from the index alone (the reason the
    /// paper builds indexes with low-precision bin boundaries). A range that
    /// could match unbinned (out-of-span) rows needs the raw column too.
    pub fn answers_exactly(&self, range: &ValueRange) -> bool {
        let (_, partial) = self.classify_bins(range);
        partial.is_empty() && (self.unbinned.is_empty() || !self.range_may_match_unbinned(range))
    }
}

/// Largest representable f64 strictly less than `x` (bounded below by `lo`).
///
/// Must use [`f64::next_down`]: naively decrementing the bit pattern moves
/// *toward zero* for negative values, which would make a bin's computed
/// maximum exceed its upper boundary and misclassify boundary bins on
/// columns with negative values.
fn prev_toward(x: f64, lo: f64) -> f64 {
    x.next_down().max(lo)
}

/// An index over the particle-identifier column.
///
/// Answers `ID IN (id_1 … id_n)` queries — the backbone of particle tracking
/// across timesteps — in time proportional to the size of the query set and
/// the number of rows found, rather than to the dataset size.
#[derive(Debug, Clone)]
pub struct IdIndex {
    /// `(id, row)` pairs sorted by id.
    sorted: Vec<(u64, u32)>,
    num_rows: usize,
}

impl IdIndex {
    /// Build an identifier index over `ids` (one entry per row).
    pub fn build(ids: &[u64]) -> Self {
        let mut sorted: Vec<(u64, u32)> = ids
            .iter()
            .enumerate()
            .map(|(row, &id)| (id, row as u32))
            .collect();
        sorted.sort_unstable();
        Self {
            sorted,
            num_rows: ids.len(),
        }
    }

    /// Number of indexed rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Rows whose identifier equals `id` (usually zero or one).
    pub fn rows_for(&self, id: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.sorted.partition_point(|&(v, _)| v < id);
        self.sorted[start..]
            .iter()
            .take_while(move |&&(v, _)| v == id)
            .map(|&(_, row)| row as usize)
    }

    /// The sorted `(id, row)` pairs backing the index, for serialization.
    pub fn pairs(&self) -> &[(u64, u32)] {
        &self.sorted
    }

    /// Reconstruct an index from pairs previously obtained via
    /// [`IdIndex::pairs`]. The pairs must be sorted by id.
    pub fn from_sorted_pairs(sorted: Vec<(u64, u32)>, num_rows: usize) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
        Self { sorted, num_rows }
    }

    /// Evaluate `ID IN (query_ids)` and return the matching rows.
    pub fn select(&self, query_ids: &[u64]) -> Selection {
        let mut rows: Vec<usize> = query_ids.iter().flat_map(|&id| self.rows_for(id)).collect();
        rows.sort_unstable();
        rows.dedup();
        Selection::from_sorted_rows(self.num_rows, rows)
    }

    /// Approximate index size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.sorted.len() * std::mem::size_of::<(u64, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ValueRange;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample_column(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect()
    }

    #[test]
    fn bin_counts_sum_to_rows() {
        let data = sample_column(10_000, 1);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 64 }).unwrap();
        assert_eq!(idx.num_bins(), 64);
        assert_eq!(idx.bin_counts().iter().sum::<u64>(), 10_000);
        assert!(idx.unbinned_rows().is_empty());
    }

    #[test]
    fn nan_rows_are_unbinned() {
        let mut data = sample_column(100, 2);
        data[10] = f64::NAN;
        data[20] = f64::NAN;
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 8 }).unwrap();
        assert_eq!(idx.unbinned_rows(), &[10, 20]);
        assert_eq!(idx.bin_counts().iter().sum::<u64>(), 98);
    }

    #[test]
    fn range_query_matches_scan() {
        let data = sample_column(20_000, 3);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 100 }).unwrap();
        for range in [
            ValueRange::gt(12.3),
            ValueRange::lt(-55.5),
            ValueRange::ge(0.0),
            ValueRange::le(99.99),
            ValueRange::between(-10.0, 10.0),
        ] {
            let from_index = idx.evaluate(&range, &data).unwrap();
            let from_scan: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, &v)| range.contains(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(from_index.to_rows(), from_scan, "range {range:?}");
        }
    }

    #[test]
    fn index_only_evaluation_brackets_exact_answer() {
        let data = sample_column(5_000, 4);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 32 }).unwrap();
        let range = ValueRange::gt(7.77);
        let (hits, candidates) = idx.evaluate_index_only(&range).unwrap();
        let exact = idx.evaluate(&range, &data).unwrap();
        // hits ⊆ exact ⊆ hits ∪ candidates
        assert!(hits.and_not(&exact).unwrap().is_none_selected());
        let upper = hits.or(&candidates).unwrap();
        assert!(exact.and_not(&upper).unwrap().is_none_selected());
        assert!(!idx.answers_exactly(&range));
    }

    #[test]
    fn boundary_aligned_query_is_answered_exactly_from_index() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
        let edges = BinEdges::uniform(0.0, 100.0, 10).unwrap();
        let idx = BitmapIndex::build_with_edges(&data, edges).unwrap();
        let range = ValueRange::ge(30.0);
        assert!(idx.answers_exactly(&range));
        let (hits, candidates) = idx.evaluate_index_only(&range).unwrap();
        assert!(candidates.is_none_selected());
        assert_eq!(hits.count(), 700);
    }

    #[test]
    fn equal_weight_index_also_answers_correctly() {
        let data = sample_column(8_000, 5);
        let idx = BitmapIndex::build(&data, &Binning::EqualWeight { bins: 50 }).unwrap();
        let range = ValueRange::between(-20.0, 35.0);
        let got = idx.evaluate(&range, &data).unwrap();
        let expected = data.iter().filter(|&&v| range.contains(v)).count() as u64;
        assert_eq!(got.count(), expected);
    }

    #[test]
    fn index_size_is_reported() {
        let data = sample_column(10_000, 6);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 128 }).unwrap();
        assert!(idx.size_in_bytes() > 0);
    }

    #[test]
    fn empty_range_selects_nothing() {
        let data = sample_column(1_000, 7);
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 16 }).unwrap();
        let got = idx.evaluate(&ValueRange::gt(1e9), &data).unwrap();
        assert!(got.is_none_selected());
    }

    #[test]
    fn unbinned_infinities_are_candidate_checked() {
        // Regression: ±∞ rows fall outside data-derived edges and land in
        // the unbinned list; range queries that extend past the boundary
        // span must still find them (the par differential suite caught the
        // indexed path silently dropping them).
        let mut data = sample_column(2_000, 8);
        data[3] = f64::INFINITY;
        data[7] = f64::NEG_INFINITY;
        data[11] = f64::NAN;
        let idx = BitmapIndex::build(&data, &Binning::EqualWidth { bins: 32 }).unwrap();
        assert_eq!(idx.unbinned_rows(), &[3, 7, 11]);
        for range in [
            ValueRange::gt(50.0),             // must include row 3 (+inf)
            ValueRange::lt(-50.0),            // must include row 7 (-inf)
            ValueRange::all(),                // both, never the NaN row
            ValueRange::between(-10.0, 10.0), // neither
        ] {
            let from_index = idx.evaluate(&range, &data).unwrap();
            let from_scan: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|(_, &v)| range.contains(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(from_index.to_rows(), from_scan, "range {range:?}");
        }
        // Unbounded ranges can match unbinned rows → not answerable from the
        // index alone; a range fully inside the span still is (when aligned).
        assert!(!idx.answers_exactly(&ValueRange::all()));
        let (lo, hi) = (idx.edges().lo(), idx.edges().hi());
        assert!(idx.answers_exactly(&ValueRange::between_inclusive(lo, hi)));

        // A NaN-only unbinned set can never match, so it keeps the
        // pure-index paths: no candidate check even for unbounded ranges.
        let mut nan_only = sample_column(500, 9);
        nan_only[42] = f64::NAN;
        let idx = BitmapIndex::build(&nan_only, &Binning::EqualWidth { bins: 8 }).unwrap();
        assert_eq!(idx.unbinned_rows(), &[42]);
        assert!(idx.answers_exactly(&ValueRange::all()));
        let (_, candidates) = idx.evaluate_index_only(&ValueRange::all()).unwrap();
        assert!(candidates.is_none_selected());
    }

    #[test]
    fn id_index_finds_rows_proportional_to_query() {
        let ids: Vec<u64> = (0..50_000u64).map(|i| i * 7 + 13).collect();
        let idx = IdIndex::build(&ids);
        let query: Vec<u64> = vec![13, 21, 7 * 100 + 13, 7 * 49_999 + 13];
        let sel = idx.select(&query);
        // id 21 does not exist; the others map to rows 0, 100, 49_999.
        assert_eq!(sel.to_rows(), vec![0, 100, 49_999]);
    }

    #[test]
    fn id_index_handles_duplicates_and_empty_query() {
        let ids = vec![5u64, 9, 5, 7, 9];
        let idx = IdIndex::build(&ids);
        assert_eq!(idx.rows_for(5).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(idx.rows_for(9).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(idx.rows_for(6).count(), 0);
        assert!(idx.select(&[]).is_none_selected());
        assert_eq!(idx.select(&[5, 5, 9]).to_rows(), vec![0, 1, 2, 4]);
    }
}
