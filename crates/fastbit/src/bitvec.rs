//! Plain (uncompressed) bit vectors.
//!
//! Used as the scratch representation when building indexes and as the
//! uncompressed comparison point for the WAH ablation benchmarks.

/// An uncompressed bit vector backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    nbits: usize,
}

impl BitVec {
    /// A bit vector of `nbits` zero bits.
    pub fn zeros(nbits: usize) -> Self {
        Self {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// A bit vector of `nbits` one bits.
    pub fn ones(nbits: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; nbits.div_ceil(64)],
            nbits,
        };
        v.clear_padding();
        v
    }

    /// Build from an iterator of set-bit positions. Positions may repeat and
    /// arrive in any order; they must be `< nbits`.
    pub fn from_indices(nbits: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::zeros(nbits);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when the vector holds no bits at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Iterate over the positions of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// In-place bitwise AND. Both operands must have the same length.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.nbits, other.nbits, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// In-place bitwise OR. Both operands must have the same length.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.nbits, other.nbits, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place bitwise NOT (restricted to the logical length).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_padding();
    }

    /// Approximate heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8
    }

    fn clear_padding(&mut self) {
        let rem = self.nbits % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(128));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn ones_respects_padding() {
        let v = BitVec::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.iter_ones().count(), 70);
        assert_eq!(v.iter_ones().last(), Some(69));
    }

    #[test]
    fn logical_operations() {
        let mut a = BitVec::from_indices(100, [1, 5, 50, 99]);
        let b = BitVec::from_indices(100, [5, 50, 60]);
        let mut o = a.clone();
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![5, 50]);
        o.or_assign(&b);
        assert_eq!(o.iter_ones().collect::<Vec<_>>(), vec![1, 5, 50, 60, 99]);
    }

    #[test]
    fn not_clears_padding_bits() {
        let mut v = BitVec::zeros(70);
        v.not_assign();
        assert_eq!(v.count_ones(), 70);
        v.not_assign();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn from_bools_matches() {
        let bools: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let v = BitVec::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BitVec::zeros(10);
        v.get(10);
    }
}
