//! A FastBit-style compressed bitmap index library.
//!
//! This crate reimplements, in safe Rust, the index/query machinery the paper
//! relies on for query-driven visualization:
//!
//! * [`bitvec::BitVec`] — plain uncompressed bit vectors.
//! * [`wah::Wah`] — Word-Aligned Hybrid (WAH) run-length compressed bit
//!   vectors with run-aware `AND`/`OR`/`NOT`, population count and set-bit
//!   iteration. WAH is the compression FastBit uses ("the fastest known
//!   bitmap compression technique").
//! * [`index::BitmapIndex`] — a binned bitmap index over one floating-point
//!   column: one compressed bitmap per bin, low-precision bin boundaries,
//!   candidate checks against the raw column for partially covered boundary
//!   bins. Supports two encodings side by side — the equality encoding (one
//!   bitmap per bin, ORed across the bins a range spans) and an optional
//!   range (cumulative) encoding answering any bin span with at most two WAH
//!   operations — with a per-query cost model
//!   ([`index::BitmapIndex::choose_encoding`]) picking the cheaper one.
//! * [`index::IdIndex`] — an index over the particle-identifier column that
//!   answers `ID IN (…)` queries in time proportional to the number of rows
//!   found, the operation behind particle tracking.
//! * [`query`] — compound Boolean range-query expressions
//!   (`px > 1e9 && py < 1e8 && y > 0`), evaluated either through the indexes
//!   or by sequential scan, plus a small parser for paper-style query
//!   strings.
//! * [`hist`] — unconditional and conditional 1D/2D histogram computation,
//!   both index-accelerated and scan-based.
//! * [`scan`] — the "Custom" sequential-scan baseline used throughout the
//!   paper's evaluation (Figures 11–17).
//! * [`persist`] — std-only binary encoders/decoders for `BitmapIndex`,
//!   `IdIndex` and `ZoneMaps` (WAH bitmaps written in their already-
//!   compressed form), hardened against hostile bytes: every failure is a
//!   typed `PersistError`, never a panic or an unbounded allocation. The
//!   datastore crate's `vdx` store builds its checksummed segment files on
//!   top of these.
//! * [`par`] — the chunked parallel evaluation engine: fixed-size row chunks
//!   carrying zone maps (min/max/NaN count), a std-only work-queue thread
//!   pool, and per-chunk query evaluation that skips chunks the zone map
//!   proves empty or full. Deterministic: the selected row set is identical
//!   to sequential evaluation for every thread count and chunk size.
//! * [`compile`] — query compilation: a normalized [`query::QueryExpr`] is
//!   lowered once into a linear bytecode [`compile::Program`] (predicate
//!   slots, AND/OR/NOT over mask registers, planner decisions bound per
//!   dataset) and evaluated with fused word-at-a-time kernels by both
//!   engines, with a deterministic plan printer and an LRU
//!   [`compile::PlanCache`] keyed by [`query::QueryExpr::cache_key`].

#![deny(missing_docs)]

pub mod bitvec;
pub mod compile;
pub mod error;
pub mod hist;
pub mod index;
pub mod par;
pub mod persist;
pub mod query;
pub mod scan;
pub mod selection;
pub mod wah;

pub use bitvec::BitVec;
pub use compile::{OpCode, PlanCache, PlanCacheStats, PlanMode, PredSource, Program, Root};
pub use error::{FastBitError, Result};
pub use hist::{BinSpec, HistEngine, HistogramEngine};
pub use index::{
    encoding_stats, register_encoding_metrics, BitmapIndex, EncodingStatsSnapshot, IdIndex,
    IndexEncoding,
};
pub use par::{ChunkMasks, ParExec, ParStatsSnapshot, Zone, ZoneMaps};
pub use persist::{PersistError, PersistResult};
pub use query::{
    evaluate as evaluate_query, evaluate_with_strategy, parse_query, ColumnProvider, ExecStrategy,
    Predicate, QueryExpr, ValueRange,
};
pub use selection::Selection;
pub use wah::Wah;
