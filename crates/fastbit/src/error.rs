//! Error type shared by the index/query layer.

use std::fmt;

/// Errors produced by index construction and query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FastBitError {
    /// Two bit vectors participating in a logical operation had different
    /// logical lengths.
    LengthMismatch {
        /// Length of the left operand in bits.
        left: u64,
        /// Length of the right operand in bits.
        right: u64,
    },
    /// A named column was not available from the [`crate::query::ColumnProvider`].
    UnknownColumn(String),
    /// The query string could not be parsed.
    Parse(String),
    /// Binning / histogram shape errors bubbled up from the histogram crate.
    Binning(histogram::BinningError),
    /// A query referenced rows outside the indexed row count.
    RowCountMismatch {
        /// Rows known to the index.
        index_rows: usize,
        /// Rows in the supplied raw column.
        data_rows: usize,
    },
    /// An operation that requires raw column data (candidate check, adaptive
    /// binning of a selection) was invoked without it.
    RawDataRequired(String),
    /// The parallel execution machinery itself failed (e.g. a chunk worker
    /// panicked) — an internal fault, not a problem with the query.
    Execution(String),
}

impl fmt::Display for FastBitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastBitError::LengthMismatch { left, right } => {
                write!(f, "bit vector length mismatch: {left} vs {right}")
            }
            FastBitError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            FastBitError::Parse(msg) => write!(f, "query parse error: {msg}"),
            FastBitError::Binning(e) => write!(f, "binning error: {e}"),
            FastBitError::RowCountMismatch {
                index_rows,
                data_rows,
            } => {
                write!(
                    f,
                    "row count mismatch: index has {index_rows}, data has {data_rows}"
                )
            }
            FastBitError::RawDataRequired(what) => {
                write!(f, "raw column data required for {what}")
            }
            FastBitError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for FastBitError {}

impl From<histogram::BinningError> for FastBitError {
    fn from(e: histogram::BinningError) -> Self {
        FastBitError::Binning(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, FastBitError>;
