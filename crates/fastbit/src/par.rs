//! Chunked parallel query evaluation with zone-map pruning.
//!
//! The paper's headline numbers come from *parallel* index evaluation and
//! histogram computation; this module supplies the intra-query half of that
//! story. Columns are partitioned into fixed-size row chunks, each carrying a
//! [`Zone`] (min / max / NaN count). A compound [`QueryExpr`] is evaluated
//! chunk-by-chunk over a small work-queue thread pool
//! (`std::thread::scope`-based, no external dependencies):
//!
//! * a chunk whose zone proves the predicate can match **nothing** is pruned
//!   to an empty mask without touching a single row;
//! * a chunk whose zone proves **every** row matches (no NaNs, value interval
//!   fully inside the query range) is pruned to a full mask;
//! * only the remaining chunks are scanned row-by-row.
//!
//! With [`ParExec::with_index_acceleration`] enabled, a predicate whose
//! column carries a [`crate::BitmapIndex`] skips chunk scanning altogether:
//! the index answers the predicate once (the per-query cost model picks the
//! equality or range encoding) and chunk workers slice their masks out of
//! that single dense answer.
//!
//! Per-chunk masks are merged *in chunk order* into one WAH-compressed
//! [`Selection`], so the selected row set is a pure function of the data and
//! the query — independent of thread count, chunk size, pruning, and index
//! acceleration. The differential suites in `tests/par_differential.rs`,
//! `tests/zone_map_adversarial.rs` and `tests/encoding_differential.rs` pin
//! exactly that: parallel evaluation can never silently mean "different
//! answers".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::compile::{OpCode, PlanMode, PredSource, Program, Root};
use crate::error::{FastBitError, Result};
use crate::query::{ColumnProvider, Predicate, QueryExpr, ValueRange};
use crate::selection::Selection;
use crate::wah::WahBuilder;

/// Default number of rows per evaluation chunk. Small enough that zone-map
/// pruning has real resolution on clustered data, large enough that the
/// per-chunk bookkeeping (a few hundred mask words) is noise.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

// ---------------------------------------------------------------------------
// Zone maps
// ---------------------------------------------------------------------------

/// Summary statistics of one chunk of one column: the minimum and maximum
/// over the non-NaN values (±∞ participate) and the number of NaNs.
///
/// A chunk containing only NaNs has `min = +∞ > max = -∞`; every interval
/// test against such an inverted interval is vacuously false, which is
/// exactly the right answer because NaN never satisfies a range predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    /// Minimum non-NaN value (`+∞` when the chunk is all NaN).
    pub min: f64,
    /// Maximum non-NaN value (`-∞` when the chunk is all NaN).
    pub max: f64,
    /// Number of NaN values in the chunk.
    pub nan_count: u32,
    /// Number of rows in the chunk.
    pub len: u32,
}

/// What a zone proves about a range predicate over its chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneVerdict {
    /// No row of the chunk can satisfy the range.
    Empty,
    /// Every row of the chunk satisfies the range.
    Full,
    /// The chunk must be scanned row-by-row.
    Scan,
}

impl Zone {
    /// Compute the zone of a value slice.
    pub fn from_slice(values: &[f64]) -> Zone {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut nan_count = 0u32;
        for &v in values {
            if v.is_nan() {
                nan_count += 1;
            } else {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
        }
        Zone {
            min,
            max,
            nan_count,
            len: values.len() as u32,
        }
    }

    /// True when the chunk holds no non-NaN value.
    pub fn all_nan(&self) -> bool {
        self.nan_count as usize == self.len as usize
    }

    /// Classify `range` against this zone.
    ///
    /// `Full` requires a NaN-free chunk whose closed value interval lies
    /// entirely inside the range; `Empty` requires that the interval not
    /// intersect the range at all (an all-NaN chunk has an inverted, hence
    /// empty, interval and is always `Empty`). Everything else must scan.
    pub fn classify(&self, range: &ValueRange) -> ZoneVerdict {
        if self.all_nan() || !range.overlaps_interval(self.min, self.max) {
            return ZoneVerdict::Empty;
        }
        if self.nan_count == 0 && range.contains_interval(self.min, self.max) {
            return ZoneVerdict::Full;
        }
        ZoneVerdict::Scan
    }
}

/// Per-chunk zones of one column at one chunk size.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMaps {
    chunk_rows: usize,
    num_rows: usize,
    zones: Vec<Zone>,
}

impl ZoneMaps {
    /// Build zone maps over `data` with `chunk_rows` rows per chunk (the
    /// final chunk may be shorter). One sequential pass; columns are built
    /// once and cached by their provider, not per query.
    pub fn build(data: &[f64], chunk_rows: usize) -> ZoneMaps {
        let chunk_rows = chunk_rows.max(1);
        let zones = data.chunks(chunk_rows).map(Zone::from_slice).collect();
        ZoneMaps {
            chunk_rows,
            num_rows: data.len(),
            zones,
        }
    }

    /// Rows per chunk this map was built with.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Total rows covered.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.zones.len()
    }

    /// The zone of chunk `i`.
    pub fn zone(&self, i: usize) -> &Zone {
        &self.zones[i]
    }

    /// Reassemble a zone map from persisted parts. The caller (the persist
    /// layer) must have validated that `zones` covers `num_rows` rows in
    /// `chunk_rows`-sized chunks.
    pub(crate) fn from_raw_parts(chunk_rows: usize, num_rows: usize, zones: Vec<Zone>) -> ZoneMaps {
        ZoneMaps {
            chunk_rows,
            num_rows,
            zones,
        }
    }

    /// Approximate heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.zones.len() * std::mem::size_of::<Zone>()
    }
}

// ---------------------------------------------------------------------------
// Execution configuration and statistics
// ---------------------------------------------------------------------------

/// Lifetime counters of a [`ParExec`]: how many evaluations ran and how much
/// work the zone maps saved. Exposed by the server's `STATS` verb.
#[derive(Debug, Default)]
pub struct ParStats {
    queries: AtomicU64,
    chunks_pruned_empty: AtomicU64,
    chunks_pruned_full: AtomicU64,
    chunks_scanned: AtomicU64,
    chunks_indexed: AtomicU64,
}

/// A point-in-time snapshot of [`ParStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStatsSnapshot {
    /// Chunked query evaluations performed.
    pub queries: u64,
    /// Predicate-chunks proven empty by a zone map (no rows touched).
    pub chunks_pruned_empty: u64,
    /// Predicate-chunks proven full by a zone map (no rows touched).
    pub chunks_pruned_full: u64,
    /// Predicate-chunks that had to be scanned row-by-row.
    pub chunks_scanned: u64,
    /// Predicate-chunks answered by slicing a precomputed bitmap-index
    /// evaluation (see [`ParExec::with_index_acceleration`]).
    pub chunks_indexed: u64,
}

impl ParStats {
    fn snapshot(&self) -> ParStatsSnapshot {
        ParStatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            chunks_pruned_empty: self.chunks_pruned_empty.load(Ordering::Relaxed),
            chunks_pruned_full: self.chunks_pruned_full.load(Ordering::Relaxed),
            chunks_scanned: self.chunks_scanned.load(Ordering::Relaxed),
            chunks_indexed: self.chunks_indexed.load(Ordering::Relaxed),
        }
    }
}

/// Per-evaluation chunk tallies. Workers accumulate here so one query's
/// pruning counts can be attached to its trace; the coordinator flushes the
/// totals into the executor's lifetime [`ParStats`] once the chunks finish.
#[derive(Debug, Default)]
struct ChunkTally {
    pruned_empty: AtomicU64,
    pruned_full: AtomicU64,
    scanned: AtomicU64,
    indexed: AtomicU64,
}

/// Configuration of the chunked parallel evaluator: thread count, chunk size
/// and whether zone-map pruning is enabled (disabling it exists for the
/// prune-vs-scan differential tests — results must be identical either way).
#[derive(Debug, Clone)]
pub struct ParExec {
    threads: usize,
    chunk_rows: usize,
    pruning: bool,
    index_accel: bool,
    stats: Arc<ParStats>,
}

impl Default for ParExec {
    fn default() -> Self {
        Self::new(1, DEFAULT_CHUNK_ROWS)
    }
}

impl ParExec {
    /// An executor with `threads` workers and `chunk_rows` rows per chunk
    /// (both clamped to at least 1).
    pub fn new(threads: usize, chunk_rows: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk_rows: chunk_rows.max(1),
            pruning: true,
            index_accel: false,
            stats: Arc::new(ParStats::default()),
        }
    }

    /// A single-threaded executor (chunked algorithm, run inline).
    pub fn sequential() -> Self {
        Self::new(1, DEFAULT_CHUNK_ROWS)
    }

    /// Disable zone-map pruning: every chunk is scanned. The answer must be
    /// byte-identical; only the work changes.
    pub fn without_pruning(mut self) -> Self {
        self.pruning = false;
        self
    }

    /// Enable (or disable) bitmap-index acceleration: a predicate whose
    /// column has a [`crate::BitmapIndex`] is evaluated *once* through the
    /// index — the per-query encoding cost model
    /// ([`crate::BitmapIndex::choose_encoding`]) picks equality or range
    /// encoding — and the chunk workers slice their masks out of that one
    /// answer instead of scanning rows. Off by default so the engine keeps
    /// its historical pure-scan semantics (and so the `Custom` scan baseline
    /// stays a baseline even on cached datasets that carry indexes). The
    /// selected row set is byte-identical either way; only the work changes.
    pub fn with_index_acceleration(mut self, on: bool) -> Self {
        self.index_accel = on;
        self
    }

    /// Whether bitmap-index acceleration is enabled.
    pub fn index_acceleration(&self) -> bool {
        self.index_accel
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rows per evaluation chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Whether zone-map pruning is enabled.
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ParStatsSnapshot {
        self.stats.snapshot()
    }

    /// Register this executor's lifetime counters into a metrics registry:
    /// `vdx_par_queries_total` and `vdx_par_chunks_total` by outcome. The
    /// collectors hold a reference to the shared stats, so clones of this
    /// executor keep feeding them.
    pub fn register_metrics(&self, registry: &obs::Registry) {
        let stats = Arc::clone(&self.stats);
        registry.counter_fn(
            "vdx_par_queries_total",
            "Chunked parallel query evaluations performed.",
            &[],
            move || stats.queries.load(Ordering::Relaxed),
        );
        for (outcome, pick) in [
            ("pruned_empty", 0usize),
            ("pruned_full", 1),
            ("scanned", 2),
            ("indexed", 3),
        ] {
            let stats = Arc::clone(&self.stats);
            registry.counter_fn(
                "vdx_par_chunks_total",
                "Predicate-chunks processed by the chunked engine, by outcome.",
                &[("outcome", outcome)],
                move || {
                    let s = stats.snapshot();
                    [
                        s.chunks_pruned_empty,
                        s.chunks_pruned_full,
                        s.chunks_scanned,
                        s.chunks_indexed,
                    ][pick]
                },
            );
        }
    }

    /// Run `work(chunk_index)` for every chunk in `0..num_chunks` over the
    /// work-queue pool and return the results in chunk order. With one
    /// thread the work runs inline on the caller's thread.
    pub fn run_chunks<T, F>(&self, num_chunks: usize, work: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        let threads = self.threads.min(num_chunks.max(1));
        if threads <= 1 {
            return (0..num_chunks).map(work).collect();
        }
        let next = AtomicUsize::new(0);
        let work = &work;
        let next = &next;
        let per_thread = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || -> Result<Vec<(usize, T)>> {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= num_chunks {
                                return Ok(out);
                            }
                            out.push((i, work(i)?));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(FastBitError::Execution("chunk worker panicked".into()))
                    })
                })
                .collect::<Vec<_>>()
        });
        let mut tagged = Vec::with_capacity(num_chunks);
        for r in per_thread {
            tagged.extend(r?);
        }
        tagged.sort_by_key(|(i, _)| *i);
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }
}

// ---------------------------------------------------------------------------
// Chunk masks
// ---------------------------------------------------------------------------

/// The evaluation result of one chunk: which of its rows match.
///
/// `Empty`/`Full` are the pruned forms; `Bits` is an explicit little-endian
/// word bitmap over the chunk's rows with the padding bits beyond the chunk
/// length held at zero.
#[derive(Debug, Clone, PartialEq)]
pub enum Mask {
    /// No row of the chunk matches.
    Empty,
    /// Every row of the chunk matches.
    Full,
    /// Explicit per-row bitmap (padding bits zero).
    Bits(Vec<u64>),
}

fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

#[cfg(test)]
fn full_words(len: usize) -> Vec<u64> {
    let mut words = vec![u64::MAX; words_for(len)];
    mask_padding(&mut words, len);
    words
}

/// Zero the bits at positions `>= len` of the final word.
fn mask_padding(words: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

impl Mask {
    /// Number of set rows given the chunk length.
    pub fn count(&self, len: usize) -> usize {
        match self {
            Mask::Empty => 0,
            Mask::Full => len,
            Mask::Bits(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Collapse an explicit bitmap that turned out all-zero or all-one.
    fn normalized(self, len: usize) -> Mask {
        match &self {
            Mask::Bits(_) => {
                let ones = self.count(len);
                if ones == 0 {
                    Mask::Empty
                } else if ones == len {
                    Mask::Full
                } else {
                    self
                }
            }
            _ => self,
        }
    }

    /// Intersection of two chunk masks.
    pub fn and(self, other: Mask, len: usize) -> Mask {
        match (self, other) {
            (Mask::Empty, _) | (_, Mask::Empty) => Mask::Empty,
            (Mask::Full, m) | (m, Mask::Full) => m,
            (Mask::Bits(mut a), Mask::Bits(b)) => {
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x &= *y;
                }
                Mask::Bits(a).normalized(len)
            }
        }
    }

    /// Union of two chunk masks.
    pub fn or(self, other: Mask, len: usize) -> Mask {
        match (self, other) {
            (Mask::Full, _) | (_, Mask::Full) => Mask::Full,
            (Mask::Empty, m) | (m, Mask::Empty) => m,
            (Mask::Bits(mut a), Mask::Bits(b)) => {
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x |= *y;
                }
                Mask::Bits(a).normalized(len)
            }
        }
    }

    /// Complement over the chunk's rows.
    pub fn not(self, len: usize) -> Mask {
        match self {
            Mask::Empty => Mask::Full,
            Mask::Full => Mask::Empty,
            Mask::Bits(mut words) => {
                for w in words.iter_mut() {
                    *w = !*w;
                }
                mask_padding(&mut words, len);
                Mask::Bits(words)
            }
        }
    }

    /// Call `f` with every selected local row index, in increasing order.
    pub fn for_each_row(&self, len: usize, mut f: impl FnMut(usize)) {
        match self {
            Mask::Empty => {}
            Mask::Full => {
                for i in 0..len {
                    f(i);
                }
            }
            Mask::Bits(words) => {
                for (wi, &word) in words.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        f(wi * 64 + bit);
                        w &= w - 1;
                    }
                }
            }
        }
    }
}

/// The chunked evaluation result of a whole query: one [`Mask`] per chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMasks {
    chunk_rows: usize,
    num_rows: usize,
    masks: Vec<Mask>,
}

impl ChunkMasks {
    /// Rows per chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Total rows covered.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.masks.len()
    }

    /// The mask of chunk `i`.
    pub fn mask(&self, i: usize) -> &Mask {
        &self.masks[i]
    }

    /// First row and length of chunk `i`.
    pub fn chunk_span(&self, i: usize) -> (usize, usize) {
        let start = i * self.chunk_rows;
        (start, self.chunk_rows.min(self.num_rows - start))
    }

    /// Number of selected rows across all chunks.
    pub fn count(&self) -> u64 {
        (0..self.num_chunks())
            .map(|i| self.masks[i].count(self.chunk_span(i).1) as u64)
            .sum()
    }

    /// Merge the per-chunk masks, in chunk order, into one WAH-compressed
    /// selection. The output depends only on the logical row set.
    pub fn to_selection(&self) -> Selection {
        let mut builder = WahBuilder::new();
        for i in 0..self.num_chunks() {
            let (_, len) = self.chunk_span(i);
            match &self.masks[i] {
                Mask::Empty => builder.push_run(false, len as u64),
                Mask::Full => builder.push_run(true, len as u64),
                Mask::Bits(_) => {
                    let mut next = 0usize;
                    self.masks[i].for_each_row(len, |row| {
                        builder.push_run(false, (row - next) as u64);
                        builder.push_bit(true);
                        next = row + 1;
                    });
                    builder.push_run(false, (len - next) as u64);
                }
            }
        }
        Selection::from_wah(builder.finish())
    }
}

// ---------------------------------------------------------------------------
// Chunked evaluation
// ---------------------------------------------------------------------------

/// Expand a [`Selection`] into a dense little-endian word bitmap, the form
/// chunk workers can slice in O(words) per chunk. Bulk run expansion: cost
/// is proportional to the dataset size, not to the number of selected rows.
fn selection_words(selection: &Selection) -> Vec<u64> {
    let mut words = vec![0u64; words_for(selection.num_rows())];
    selection.as_wah().write_dense_words(&mut words);
    words
}

/// Extract bits `[start, start + len)` of a dense word bitmap into a fresh
/// chunk-local word vector (padding bits cleared).
fn slice_bits(words: &[u64], start: usize, len: usize) -> Vec<u64> {
    let mut out = vec![0u64; words_for(len)];
    let base = start / 64;
    let shift = start % 64;
    for (j, slot) in out.iter_mut().enumerate() {
        let lo = words.get(base + j).copied().unwrap_or(0);
        *slot = if shift == 0 {
            lo
        } else {
            let hi = words.get(base + j + 1).copied().unwrap_or(0);
            (lo >> shift) | (hi << (64 - shift))
        };
    }
    mask_padding(&mut out, len);
    out
}

/// Evaluate `expr` chunk-by-chunk over `exec`'s pool and return the per-chunk
/// masks. The expression is compiled to a bytecode [`Program`] first
/// ([`Program::compile`]); callers that hold a cached program should use
/// [`evaluate_chunk_masks_program`] directly.
pub fn evaluate_chunk_masks(
    expr: &QueryExpr,
    provider: &(impl ColumnProvider + Sync),
    exec: &ParExec,
) -> Result<ChunkMasks> {
    evaluate_chunk_masks_program(&Program::compile(expr), provider, exec)
}

/// Evaluate a compiled [`Program`] chunk-by-chunk over `exec`'s pool. Zone
/// maps are taken from the provider when it has them at this chunk size (see
/// [`ColumnProvider::zone_maps`]) and computed on the fly from each chunk's
/// slice otherwise. With [`ParExec::with_index_acceleration`] enabled,
/// predicate slots whose column has a bitmap index are answered once through
/// the index (encoding recorded by the plan's cost model) and sliced per
/// chunk. Chunk workers then interpret the program's linear op list over
/// per-chunk mask registers instead of re-walking the expression tree.
pub fn evaluate_chunk_masks_program(
    program: &Program,
    provider: &(impl ColumnProvider + Sync),
    exec: &ParExec,
) -> Result<ChunkMasks> {
    let _eval = obs::span("evaluate");
    let num_rows = provider.num_rows();
    let chunk_rows = exec.chunk_rows();
    // Resolve every referenced column once, up front: the error surface
    // matches sequential evaluation (which reports the first unknown column)
    // and chunk workers then operate on plain slices.
    let mut columns: BTreeMap<String, &[f64]> = BTreeMap::new();
    let mut zones: BTreeMap<String, Option<Arc<ZoneMaps>>> = BTreeMap::new();
    for name in program.expr().columns() {
        let data = provider
            .column(&name)
            .ok_or_else(|| FastBitError::UnknownColumn(name.clone()))?;
        if data.len() != num_rows {
            return Err(FastBitError::RowCountMismatch {
                index_rows: num_rows,
                data_rows: data.len(),
            });
        }
        zones.insert(
            name.clone(),
            provider
                .zone_maps(&name, chunk_rows)
                .filter(|z| z.chunk_rows() == chunk_rows && z.num_rows() == num_rows),
        );
        columns.insert(name, data);
    }
    // Bind planner decisions, then answer each Index slot once, exactly (the
    // candidate check runs against the raw column), before any chunk work.
    // Textually identical predicates share one slot, hence one evaluation.
    let sources = program.plan(
        provider,
        PlanMode::Chunked {
            pruning: exec.pruning(),
            index_accel: exec.index_accel,
        },
    )?;
    let mut slot_answers: Vec<Option<Vec<u64>>> = Vec::with_capacity(sources.len());
    for (pred, source) in program.slots().iter().zip(&sources) {
        match *source {
            PredSource::Index { encoding, .. } => {
                let _slot = obs::span("slot");
                obs::note("pred", || pred.to_string());
                obs::note("source", || "index".to_string());
                let index = provider.index(&pred.column).expect("planned index slot");
                let data = columns.get(pred.column.as_str()).expect("resolved column");
                let selection = index.evaluate_with(&pred.range, data, encoding)?;
                crate::index::note_encoding_query(encoding);
                slot_answers.push(Some(selection_words(&selection)));
            }
            PredSource::Scan { .. } => slot_answers.push(None),
        }
    }
    let num_chunks = num_rows.div_ceil(chunk_rows);
    exec.stats.queries.fetch_add(1, Ordering::Relaxed);
    let tally = ChunkTally::default();
    let masks = exec.run_chunks(num_chunks, |chunk| {
        let start = chunk * chunk_rows;
        let len = chunk_rows.min(num_rows - start);
        let mut slot_masks = Vec::with_capacity(program.slots().len());
        for (i, pred) in program.slots().iter().enumerate() {
            slot_masks.push(eval_slot_chunk(
                pred,
                &sources[i],
                slot_answers[i].as_deref(),
                &columns,
                &zones,
                &tally,
                chunk,
                start,
                len,
            )?);
        }
        Ok(run_ops_masks(program, slot_masks, len))
    })?;
    // Flush this query's tallies into the lifetime counters and onto the
    // active trace (the workers ran outside the tracing thread, so the
    // counts attach here, on the coordinating thread).
    let (pe, pf, sc, ix) = (
        tally.pruned_empty.load(Ordering::Relaxed),
        tally.pruned_full.load(Ordering::Relaxed),
        tally.scanned.load(Ordering::Relaxed),
        tally.indexed.load(Ordering::Relaxed),
    );
    exec.stats
        .chunks_pruned_empty
        .fetch_add(pe, Ordering::Relaxed);
    exec.stats
        .chunks_pruned_full
        .fetch_add(pf, Ordering::Relaxed);
    exec.stats.chunks_scanned.fetch_add(sc, Ordering::Relaxed);
    exec.stats.chunks_indexed.fetch_add(ix, Ordering::Relaxed);
    obs::count("chunks", num_chunks as u64);
    obs::count("pruned_empty", pe);
    obs::count("pruned_full", pf);
    obs::count("scanned", sc);
    obs::count("indexed", ix);
    Ok(ChunkMasks {
        chunk_rows,
        num_rows,
        masks,
    })
}

/// Evaluate `expr` chunk-by-chunk and merge the result into one
/// [`Selection`]. The selected row set is identical to sequential evaluation
/// ([`crate::query::evaluate_with_strategy`]) for every thread count, chunk
/// size, and pruning setting.
pub fn evaluate_chunked(
    expr: &QueryExpr,
    provider: &(impl ColumnProvider + Sync),
    exec: &ParExec,
) -> Result<Selection> {
    Ok(evaluate_chunk_masks(expr, provider, exec)?.to_selection())
}

/// Evaluate one predicate slot over one chunk: slice the precomputed index
/// answer, prune through the zone map, or scan the chunk's rows.
#[allow(clippy::too_many_arguments)] // internal chunk-worker plumbing
fn eval_slot_chunk(
    pred: &Predicate,
    source: &PredSource,
    answer: Option<&[u64]>,
    columns: &BTreeMap<String, &[f64]>,
    zones: &BTreeMap<String, Option<Arc<ZoneMaps>>>,
    tally: &ChunkTally,
    chunk: usize,
    start: usize,
    len: usize,
) -> Result<Mask> {
    if let Some(words) = answer {
        tally.indexed.fetch_add(1, Ordering::Relaxed);
        return Ok(Mask::Bits(slice_bits(words, start, len)).normalized(len));
    }
    let data = columns
        .get(pred.column.as_str())
        .ok_or_else(|| FastBitError::UnknownColumn(pred.column.clone()))?;
    let slice = &data[start..start + len];
    if matches!(source, PredSource::Scan { pruned: true }) {
        let zone = match zones.get(pred.column.as_str()) {
            Some(Some(maps)) => *maps.zone(chunk),
            _ => Zone::from_slice(slice),
        };
        match zone.classify(&pred.range) {
            ZoneVerdict::Empty => {
                tally.pruned_empty.fetch_add(1, Ordering::Relaxed);
                return Ok(Mask::Empty);
            }
            ZoneVerdict::Full => {
                tally.pruned_full.fetch_add(1, Ordering::Relaxed);
                return Ok(Mask::Full);
            }
            ZoneVerdict::Scan => {}
        }
    }
    tally.scanned.fetch_add(1, Ordering::Relaxed);
    let mut words = vec![0u64; words_for(len)];
    for (i, &v) in slice.iter().enumerate() {
        if pred.range.contains(v) {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    Ok(Mask::Bits(words).normalized(len))
}

/// Interpret the program's linear op list over this chunk's slot masks. The
/// masks normalize after every op, so the result is a pure function of the
/// chunk's logical row set — byte-identical to what the old per-chunk tree
/// walk produced.
fn run_ops_masks(program: &Program, slot_masks: Vec<Mask>, len: usize) -> Mask {
    match program.root() {
        Root::Pred(s) => {
            return slot_masks
                .into_iter()
                .nth(s as usize)
                .expect("slot in range")
        }
        Root::Const(true) => return Mask::Full,
        Root::Const(false) => return Mask::Empty,
        Root::Ops { .. } => {}
    }
    let mut regs: Vec<Mask> = vec![Mask::Empty; program.num_regs()];
    let take = |regs: &mut Vec<Mask>, i: u16| std::mem::replace(&mut regs[i as usize], Mask::Empty);
    for op in program.ops() {
        match *op {
            OpCode::Load { dst, slot } => regs[dst as usize] = slot_masks[slot as usize].clone(),
            OpCode::LoadConst { dst, ones } => {
                regs[dst as usize] = if ones { Mask::Full } else { Mask::Empty }
            }
            OpCode::AndReg { dst, src } => {
                let (b, a) = (take(&mut regs, src), take(&mut regs, dst));
                regs[dst as usize] = a.and(b, len);
            }
            OpCode::AndSlot { dst, slot } => {
                let a = take(&mut regs, dst);
                regs[dst as usize] = a.and(slot_masks[slot as usize].clone(), len);
            }
            OpCode::OrReg { dst, src } => {
                let (b, a) = (take(&mut regs, src), take(&mut regs, dst));
                regs[dst as usize] = a.or(b, len);
            }
            OpCode::OrSlot { dst, slot } => {
                let a = take(&mut regs, dst);
                regs[dst as usize] = a.or(slot_masks[slot as usize].clone(), len);
            }
            OpCode::Not { dst } => {
                let a = take(&mut regs, dst);
                regs[dst as usize] = a.not(len);
            }
        }
    }
    let Root::Ops { result } = program.root() else {
        unreachable!("leaf roots returned above")
    };
    take(&mut regs, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{evaluate_with_strategy, ExecStrategy, Predicate};
    use crate::scan;
    use std::collections::HashMap;

    struct MemProvider {
        columns: HashMap<String, Vec<f64>>,
        rows: usize,
    }

    impl MemProvider {
        fn new(columns: Vec<(&str, Vec<f64>)>) -> Self {
            let rows = columns[0].1.len();
            Self {
                columns: columns
                    .into_iter()
                    .map(|(n, d)| (n.to_string(), d))
                    .collect(),
                rows,
            }
        }
    }

    impl ColumnProvider for MemProvider {
        fn num_rows(&self) -> usize {
            self.rows
        }
        fn column(&self, name: &str) -> Option<&[f64]> {
            self.columns.get(name).map(|v| v.as_slice())
        }
        fn index(&self, _name: &str) -> Option<&crate::index::BitmapIndex> {
            None
        }
    }

    fn ramp(n: usize) -> MemProvider {
        MemProvider::new(vec![("x", (0..n).map(|i| i as f64).collect::<Vec<f64>>())])
    }

    #[test]
    fn zone_classify_covers_all_cases() {
        let z = Zone::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(z.classify(&ValueRange::gt(3.0)), ZoneVerdict::Empty);
        assert_eq!(z.classify(&ValueRange::ge(1.0)), ZoneVerdict::Full);
        assert_eq!(z.classify(&ValueRange::gt(1.0)), ZoneVerdict::Scan);
        assert_eq!(z.classify(&ValueRange::lt(0.0)), ZoneVerdict::Empty);
        let nanz = Zone::from_slice(&[f64::NAN, f64::NAN]);
        assert!(nanz.all_nan());
        assert_eq!(nanz.classify(&ValueRange::all()), ZoneVerdict::Empty);
        let mixed = Zone::from_slice(&[1.0, f64::NAN]);
        // The NaN row forces a scan even though [1,1] ⊆ range.
        assert_eq!(mixed.classify(&ValueRange::ge(0.0)), ZoneVerdict::Scan);
    }

    #[test]
    fn zone_maps_partition_the_column() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let maps = ZoneMaps::build(&data, 4);
        assert_eq!(maps.num_chunks(), 3);
        assert_eq!(maps.zone(0).min, 0.0);
        assert_eq!(maps.zone(0).max, 3.0);
        assert_eq!(maps.zone(2).len, 2);
        assert!(maps.size_in_bytes() > 0);
    }

    #[test]
    fn mask_algebra_normalizes_and_iterates() {
        let len = 70;
        let a = Mask::Bits(full_words(len));
        assert_eq!(a.clone().normalized(len), Mask::Full);
        assert_eq!(Mask::Full.and(Mask::Empty, len), Mask::Empty);
        assert_eq!(Mask::Empty.or(Mask::Full, len), Mask::Full);
        assert_eq!(Mask::Full.not(len), Mask::Empty);
        let mut words = vec![0u64; 2];
        words[0] |= 1 << 3;
        words[1] |= 1 << 5; // row 69
        let m = Mask::Bits(words);
        let mut rows = Vec::new();
        m.for_each_row(len, |r| rows.push(r));
        assert_eq!(rows, vec![3, 69]);
        let inv = m.not(len);
        assert_eq!(inv.count(len), 68);
    }

    #[test]
    fn chunked_matches_scan_on_simple_ramp() {
        let p = ramp(1000);
        let expr = QueryExpr::Pred(Predicate::new("x", ValueRange::between(100.0, 900.0)));
        let oracle = scan::scan_query(&expr, &p).unwrap();
        for chunk_rows in [1usize, 31, 64, 1000, 5000] {
            for threads in [1usize, 2, 8] {
                let exec = ParExec::new(threads, chunk_rows);
                let got = evaluate_chunked(&expr, &p, &exec).unwrap();
                assert_eq!(got.to_rows(), oracle.to_rows(), "{chunk_rows}/{threads}");
            }
        }
    }

    #[test]
    fn chunked_result_is_independent_of_threads_and_pruning() {
        let p = ramp(10_000);
        let expr = QueryExpr::pred("x", ValueRange::lt(2500.0)).or(QueryExpr::pred(
            "x",
            ValueRange::ge(7500.0),
        )
        .not());
        let reference = evaluate_chunked(&expr, &p, &ParExec::new(1, 512)).unwrap();
        for exec in [
            ParExec::new(4, 512),
            ParExec::new(8, 512),
            ParExec::new(4, 512).without_pruning(),
        ] {
            let got = evaluate_chunked(&expr, &p, &exec).unwrap();
            // Same chunk size ⇒ the WAH words are bit-for-bit identical.
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn pruning_counters_move() {
        let p = ramp(10_000);
        let exec = ParExec::new(2, 100);
        // Matches everything: every chunk is a full-prune.
        evaluate_chunked(&QueryExpr::pred("x", ValueRange::ge(0.0)), &p, &exec).unwrap();
        // Matches nothing: every chunk is an empty-prune.
        evaluate_chunked(&QueryExpr::pred("x", ValueRange::gt(1e12)), &p, &exec).unwrap();
        let s = exec.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.chunks_pruned_full, 100);
        assert_eq!(s.chunks_pruned_empty, 100);
        assert_eq!(s.chunks_scanned, 0);
    }

    #[test]
    fn unknown_column_errors_even_in_later_operands() {
        let p = ramp(100);
        let exec = ParExec::new(2, 10);
        let expr = QueryExpr::pred("x", ValueRange::gt(1e12))
            .and(QueryExpr::pred("nope", ValueRange::gt(0.0)));
        assert!(matches!(
            evaluate_chunked(&expr, &p, &exec),
            Err(FastBitError::UnknownColumn(_))
        ));
    }

    #[test]
    fn empty_dataset_yields_empty_selection() {
        let p = MemProvider::new(vec![("x", Vec::new())]);
        let expr = QueryExpr::pred("x", ValueRange::gt(0.0));
        let got = evaluate_chunked(&expr, &p, &ParExec::new(4, 16)).unwrap();
        assert_eq!(got.num_rows(), 0);
        assert!(got.is_none_selected());
    }

    #[test]
    fn slice_bits_extracts_arbitrary_ranges() {
        // A recognizable pattern: bits 0, 64, 65, 100, 127, 130 over 131 bits.
        let mut words = vec![0u64; 3];
        for bit in [0usize, 64, 65, 100, 127, 130] {
            words[bit / 64] |= 1 << (bit % 64);
        }
        for (start, len) in [(0, 131), (1, 130), (63, 5), (64, 64), (100, 31), (130, 1)] {
            let sliced = slice_bits(&words, start, len);
            for i in 0..len {
                let bit = start + i;
                let expected = [0usize, 64, 65, 100, 127, 130].contains(&bit);
                let got = sliced[i / 64] >> (i % 64) & 1 == 1;
                assert_eq!(got, expected, "start {start} len {len} bit {bit}");
            }
            // Padding bits beyond len are clear.
            if len % 64 != 0 {
                assert_eq!(sliced[len / 64] & !((1u64 << (len % 64)) - 1), 0);
            }
        }
    }

    #[test]
    fn index_acceleration_matches_scan_byte_for_byte() {
        use crate::index::BitmapIndex;
        use histogram::Binning;

        struct IndexedProvider {
            inner: MemProvider,
            indexes: HashMap<String, BitmapIndex>,
        }
        impl ColumnProvider for IndexedProvider {
            fn num_rows(&self) -> usize {
                self.inner.num_rows()
            }
            fn column(&self, name: &str) -> Option<&[f64]> {
                self.inner.column(name)
            }
            fn index(&self, name: &str) -> Option<&BitmapIndex> {
                self.indexes.get(name)
            }
        }

        let mut x: Vec<f64> = (0..3000).map(|i| ((i * 37) % 500) as f64).collect();
        x[5] = f64::NAN;
        x[9] = f64::INFINITY;
        let index = BitmapIndex::build(&x, &Binning::EqualWidth { bins: 32 })
            .unwrap()
            .with_range_encoding()
            .unwrap();
        let p = IndexedProvider {
            inner: MemProvider::new(vec![("x", x)]),
            indexes: HashMap::from([("x".to_string(), index)]),
        };
        let expr = QueryExpr::pred("x", ValueRange::between(30.0, 470.0))
            .and(QueryExpr::pred("x", ValueRange::le(400.0)).not());
        let plain = ParExec::new(2, 97);
        let reference = evaluate_chunked(&expr, &p, &plain).unwrap();
        for threads in [1usize, 4] {
            let accel = ParExec::new(threads, 97).with_index_acceleration(true);
            let got = evaluate_chunked(&expr, &p, &accel).unwrap();
            // Identical WAH selection words, not merely the same rows.
            assert_eq!(got.as_wah(), reference.as_wah(), "threads {threads}");
            let stats = accel.stats();
            assert!(stats.chunks_indexed > 0, "index path actually ran");
            assert_eq!(stats.chunks_scanned, 0, "no chunk fell back to a scan");
        }
        assert_eq!(plain.stats().chunks_indexed, 0);
    }

    #[test]
    fn matches_sequential_evaluator_with_nans_and_infs() {
        let mut x: Vec<f64> = (0..500).map(|i| (i as f64) - 250.0).collect();
        x[10] = f64::NAN;
        x[490] = f64::INFINITY;
        x[491] = f64::NEG_INFINITY;
        let p = MemProvider::new(vec![("x", x)]);
        for expr in [
            QueryExpr::pred("x", ValueRange::gt(-10.0)),
            QueryExpr::pred("x", ValueRange::le(0.0)).not(),
            QueryExpr::pred("x", ValueRange::all()),
        ] {
            let oracle = evaluate_with_strategy(&expr, &p, ExecStrategy::ScanOnly).unwrap();
            let got = evaluate_chunked(&expr, &p, &ParExec::new(3, 37)).unwrap();
            assert_eq!(got.to_rows(), oracle.to_rows(), "{expr}");
        }
    }
}
