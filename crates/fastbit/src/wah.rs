//! Word-Aligned Hybrid (WAH) compressed bit vectors.
//!
//! WAH is the compression scheme used by FastBit. Bits are grouped into
//! 31-bit groups stored in 32-bit words:
//!
//! * a **literal word** has its most significant bit clear and carries one
//!   31-bit group verbatim;
//! * a **fill word** has its most significant bit set; bit 30 carries the
//!   fill value and the low 30 bits the number of consecutive identical
//!   31-bit groups it represents.
//!
//! Logical operations walk the two operands run-by-run, so a long fill is
//! processed in constant time rather than group-by-group. This is what makes
//! compound Boolean range queries over binned bitmap indexes cheap.

use crate::error::{FastBitError, Result};
use crate::BitVec;

/// Number of payload bits per WAH group.
pub const GROUP_BITS: u64 = 31;
const LITERAL_MASK: u32 = 0x7FFF_FFFF;
const FILL_FLAG: u32 = 0x8000_0000;
const FILL_ONE_FLAG: u32 = 0x4000_0000;
const FILL_COUNT_MASK: u32 = 0x3FFF_FFFF;

/// A WAH-compressed bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wah {
    words: Vec<u32>,
    nbits: u64,
}

/// Incremental builder for [`Wah`] vectors.
#[derive(Debug, Default)]
pub struct WahBuilder {
    words: Vec<u32>,
    current: u32,
    filled: u64,
    nbits: u64,
}

impl WahBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if bit {
            self.current |= 1 << self.filled;
        }
        self.filled += 1;
        self.nbits += 1;
        if self.filled == GROUP_BITS {
            let g = self.current;
            self.current = 0;
            self.filled = 0;
            self.append_group(g);
        }
    }

    /// Append `count` copies of `bit`. Runs that span whole groups are
    /// appended as fill words without touching individual bits.
    pub fn push_run(&mut self, bit: bool, mut count: u64) {
        // Finish the partial group bit-by-bit first.
        while self.filled != 0 && count > 0 {
            self.push_bit(bit);
            count -= 1;
        }
        let full_groups = count / GROUP_BITS;
        if full_groups > 0 {
            self.append_fill(bit, full_groups);
            self.nbits += full_groups * GROUP_BITS;
            count -= full_groups * GROUP_BITS;
        }
        for _ in 0..count {
            self.push_bit(bit);
        }
    }

    fn append_fill(&mut self, bit: bool, mut groups: u64) {
        while groups > 0 {
            let chunk = groups.min(FILL_COUNT_MASK as u64) as u32;
            let value_flag = if bit { FILL_ONE_FLAG } else { 0 };
            // Coalesce with an existing trailing fill of the same value.
            if let Some(last) = self.words.last_mut() {
                if *last & FILL_FLAG != 0 && (*last & FILL_ONE_FLAG) == value_flag {
                    let existing = *last & FILL_COUNT_MASK;
                    let room = FILL_COUNT_MASK - existing;
                    let add = chunk.min(room);
                    *last += add;
                    groups -= add as u64;
                    if add == chunk {
                        continue;
                    } else {
                        let rest = chunk - add;
                        self.words.push(FILL_FLAG | value_flag | rest);
                        groups -= rest as u64;
                        continue;
                    }
                }
            }
            self.words.push(FILL_FLAG | value_flag | chunk);
            groups -= chunk as u64;
        }
    }

    fn append_group(&mut self, group: u32) {
        if group == 0 {
            self.append_fill(false, 1);
        } else if group == LITERAL_MASK {
            self.append_fill(true, 1);
        } else {
            self.words.push(group);
        }
    }

    /// Finish building. A trailing partial group is stored as a literal with
    /// zero padding bits; the logical length excludes the padding.
    pub fn finish(mut self) -> Wah {
        if self.filled > 0 {
            // The partial group is stored literally even when all-zero so the
            // logical length bookkeeping stays simple; it still compresses
            // fine because it is a single word.
            self.words.push(self.current & LITERAL_MASK);
        }
        Wah {
            words: self.words,
            nbits: self.nbits,
        }
    }
}

/// One decoded run: `groups` consecutive 31-bit groups all equal to `pattern`.
#[derive(Debug, Clone, Copy)]
struct Run {
    pattern: u32,
    groups: u64,
    is_fill: bool,
}

/// Cursor over the runs of a WAH vector.
struct RunCursor<'a> {
    words: &'a [u32],
    pos: usize,
    current: Option<Run>,
}

impl<'a> RunCursor<'a> {
    fn new(words: &'a [u32]) -> Self {
        let mut c = Self {
            words,
            pos: 0,
            current: None,
        };
        c.advance_word();
        c
    }

    fn advance_word(&mut self) {
        if self.pos >= self.words.len() {
            self.current = None;
            return;
        }
        let w = self.words[self.pos];
        self.pos += 1;
        self.current = Some(if w & FILL_FLAG != 0 {
            Run {
                pattern: if w & FILL_ONE_FLAG != 0 {
                    LITERAL_MASK
                } else {
                    0
                },
                groups: (w & FILL_COUNT_MASK) as u64,
                is_fill: true,
            }
        } else {
            Run {
                pattern: w,
                groups: 1,
                is_fill: false,
            }
        });
    }

    /// Consume up to `n` groups from the current run, returning how many were
    /// consumed together with the pattern.
    fn take(&mut self, n: u64) -> Option<(u32, u64, bool)> {
        let run = self.current?;
        let take = run.groups.min(n);
        let result = (run.pattern, take, run.is_fill);
        if take == run.groups {
            self.advance_word();
        } else {
            self.current = Some(Run {
                groups: run.groups - take,
                ..run
            });
        }
        Some(result)
    }

    fn peek_groups(&self) -> Option<u64> {
        self.current.map(|r| r.groups)
    }
}

impl Wah {
    /// An all-zero vector of `nbits` bits.
    pub fn zeros(nbits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.push_run(false, nbits);
        b.finish()
    }

    /// An all-one vector of `nbits` bits.
    pub fn ones(nbits: u64) -> Self {
        let mut b = WahBuilder::new();
        b.push_run(true, nbits);
        b.finish()
    }

    /// Build from sorted, unique set-bit positions.
    ///
    /// # Panics
    /// Panics when positions are unsorted, repeated, or `>= nbits`.
    pub fn from_sorted_indices(nbits: u64, indices: impl IntoIterator<Item = u64>) -> Self {
        let mut b = WahBuilder::new();
        let mut next = 0u64;
        for i in indices {
            assert!(i >= next, "indices must be strictly increasing");
            assert!(i < nbits, "index {i} out of range {nbits}");
            b.push_run(false, i - next);
            b.push_bit(true);
            next = i + 1;
        }
        b.push_run(false, nbits - next);
        b.finish()
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = WahBuilder::new();
        for &bit in bits {
            b.push_bit(bit);
        }
        b.finish()
    }

    /// Compress an uncompressed [`BitVec`].
    pub fn from_bitvec(bv: &BitVec) -> Self {
        let mut b = WahBuilder::new();
        let mut prev_end = 0usize;
        for i in bv.iter_ones() {
            b.push_run(false, (i - prev_end) as u64);
            b.push_bit(true);
            prev_end = i + 1;
        }
        b.push_run(false, (bv.len() - prev_end) as u64);
        b.finish()
    }

    /// Expand to an uncompressed [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        let mut bv = BitVec::zeros(self.nbits as usize);
        for i in self.iter_ones() {
            bv.set(i as usize, true);
        }
        bv
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> u64 {
        self.nbits
    }

    /// True when the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Number of 32-bit words in the compressed representation.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Approximate heap size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut total = 0u64;
        let mut cursor = RunCursor::new(&self.words);
        while let Some((pattern, groups, is_fill)) = cursor.take(u64::MAX) {
            if is_fill {
                if pattern != 0 {
                    total += groups * GROUP_BITS;
                }
            } else {
                total += pattern.count_ones() as u64;
            }
        }
        total
    }

    /// Iterate over set-bit positions in increasing order.
    pub fn iter_ones(&self) -> WahOnesIter<'_> {
        WahOnesIter {
            cursor: RunCursor::new(&self.words),
            bit_offset: 0,
            pending: None,
            nbits: self.nbits,
        }
    }

    /// Bitwise AND with `other`.
    pub fn and(&self, other: &Wah) -> Result<Wah> {
        self.binary_op(other, |a, b| a & b)
    }

    /// Bitwise OR with `other`.
    pub fn or(&self, other: &Wah) -> Result<Wah> {
        self.binary_op(other, |a, b| a | b)
    }

    /// Bitwise AND-NOT (`self & !other`).
    pub fn and_not(&self, other: &Wah) -> Result<Wah> {
        self.binary_op(other, |a, b| a & !b & LITERAL_MASK)
    }

    /// Bitwise XOR with `other`.
    pub fn xor(&self, other: &Wah) -> Result<Wah> {
        self.binary_op(other, |a, b| (a ^ b) & LITERAL_MASK)
    }

    /// Bitwise complement over the logical length.
    pub fn not(&self) -> Wah {
        let total_groups = self.nbits.div_ceil(GROUP_BITS);
        let mut builder = WahBuilder::new();
        let mut cursor = RunCursor::new(&self.words);
        let mut groups_done = 0u64;
        while let Some((pattern, groups, _)) = cursor.take(u64::MAX) {
            let flipped = !pattern & LITERAL_MASK;
            for _ in 0..groups {
                groups_done += 1;
                let g = if groups_done == total_groups {
                    // Mask padding bits beyond the logical length.
                    let valid = self.nbits - (total_groups - 1) * GROUP_BITS;
                    if valid == GROUP_BITS {
                        flipped
                    } else {
                        flipped & ((1u32 << valid) - 1)
                    }
                } else {
                    flipped
                };
                builder.append_group(g);
            }
        }
        builder.nbits = self.nbits;
        let mut result = builder.finish();
        result.nbits = self.nbits;
        result
    }

    fn binary_op(&self, other: &Wah, op: fn(u32, u32) -> u32) -> Result<Wah> {
        if self.nbits != other.nbits {
            return Err(FastBitError::LengthMismatch {
                left: self.nbits,
                right: other.nbits,
            });
        }
        let mut a = RunCursor::new(&self.words);
        let mut b = RunCursor::new(&other.words);
        let mut builder = WahBuilder::new();
        loop {
            let (ga, gb) = match (a.peek_groups(), b.peek_groups()) {
                (Some(ga), Some(gb)) => (ga, gb),
                (None, None) => break,
                // Both operands cover the same number of bits, but the last
                // partial group may be represented on one side only when the
                // length is an exact multiple of 31 on the other; treat the
                // missing side as zero groups exhausted simultaneously.
                _ => break,
            };
            let n = ga.min(gb);
            let (pa, _, fa) = a.take(n).expect("peeked");
            let (pb, _, fb) = b.take(n).expect("peeked");
            let combined = op(pa, pb) & LITERAL_MASK;
            if fa && fb {
                // Both sides are fills: emit the whole run at once.
                if combined == 0 {
                    builder.append_fill(false, n);
                } else if combined == LITERAL_MASK {
                    builder.append_fill(true, n);
                } else {
                    // Cannot happen: a fill pattern is all-zero or all-one,
                    // and any bitwise op of such patterns is too.
                    for _ in 0..n {
                        builder.append_group(combined);
                    }
                }
                builder.nbits += n * GROUP_BITS;
            } else {
                for _ in 0..n {
                    builder.append_group(combined);
                    builder.nbits += GROUP_BITS;
                }
            }
        }
        let mut result = builder.finish();
        result.nbits = self.nbits;
        Ok(result)
    }

    /// Expand into a dense little-endian `u64` word bitmap: bit `i` of the
    /// output (word `i / 64`, bit `i % 64`) is set iff bit `i` of this
    /// vector is. `out` must hold at least `len().div_ceil(64)` words and
    /// should be zeroed; bits beyond the logical length are left untouched.
    ///
    /// Runs are emitted in bulk — a fill of ones becomes whole `!0` words —
    /// so the cost is proportional to the *output* size, not to the number
    /// of set bits. This is what the chunked engine's index acceleration
    /// uses to turn one index answer into sliceable chunk masks.
    pub fn write_dense_words(&self, out: &mut [u64]) {
        fn set_bit_range(out: &mut [u64], start: u64, end: u64) {
            if start >= end {
                return;
            }
            let (first, last) = (start as usize / 64, (end as usize - 1) / 64);
            let head = !0u64 << (start % 64);
            let tail = !0u64 >> (63 - ((end - 1) % 64));
            if first == last {
                out[first] |= head & tail;
                return;
            }
            out[first] |= head;
            for w in &mut out[first + 1..last] {
                *w = !0;
            }
            out[last] |= tail;
        }

        let mut bit = 0u64;
        let mut cursor = RunCursor::new(&self.words);
        while let Some((pattern, groups, is_fill)) = cursor.take(u64::MAX) {
            if is_fill {
                let span = groups * GROUP_BITS;
                if pattern != 0 {
                    set_bit_range(out, bit, (bit + span).min(self.nbits));
                }
                bit += span;
            } else {
                let mut p = pattern;
                while p != 0 {
                    let pos = bit + p.trailing_zeros() as u64;
                    p &= p - 1;
                    if pos < self.nbits {
                        out[pos as usize / 64] |= 1u64 << (pos % 64);
                    }
                }
                bit += GROUP_BITS;
            }
        }
    }

    /// The raw compressed words, for serialization.
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }

    /// Reconstruct a vector from serialized parts. The caller must supply
    /// words produced by [`Wah::as_words`] together with the original logical
    /// length.
    pub fn from_raw_parts(words: Vec<u32>, nbits: u64) -> Self {
        Self { words, nbits }
    }

    /// Validating variant of [`Wah::from_raw_parts`] for words read from
    /// untrusted bytes: the words must cover exactly `nbits` bits (fill
    /// words with a zero group count are rejected) and the padding bits of a
    /// final partial group must be clear — the invariants every vector
    /// produced by this crate upholds and that the logical operations and
    /// population counts rely on. Returns a description of the violation.
    pub fn checked_from_raw_parts(words: Vec<u32>, nbits: u64) -> std::result::Result<Wah, String> {
        let expected_groups = nbits.div_ceil(GROUP_BITS);
        let mut groups = 0u64;
        let mut last_pattern = 0u32;
        for &w in &words {
            if w & FILL_FLAG != 0 {
                let count = (w & FILL_COUNT_MASK) as u64;
                if count == 0 {
                    return Err("fill word with zero group count".to_string());
                }
                groups += count;
                last_pattern = if w & FILL_ONE_FLAG != 0 {
                    LITERAL_MASK
                } else {
                    0
                };
            } else {
                groups += 1;
                last_pattern = w;
            }
            if groups > expected_groups {
                return Err(format!(
                    "words cover more than the expected {expected_groups} group(s)"
                ));
            }
        }
        if groups != expected_groups {
            return Err(format!(
                "words cover {groups} group(s), expected {expected_groups}"
            ));
        }
        let tail = nbits % GROUP_BITS;
        if tail != 0 && last_pattern & !((1u32 << tail) - 1) != 0 {
            return Err("padding bits beyond the logical length are set".to_string());
        }
        Ok(Self { words, nbits })
    }

    /// Compression ratio relative to the uncompressed representation
    /// (uncompressed bytes divided by compressed bytes).
    pub fn compression_ratio(&self) -> f64 {
        let uncompressed = (self.nbits as f64 / 8.0).max(1.0);
        uncompressed / self.size_in_bytes().max(1) as f64
    }
}

/// Iterator over the set-bit positions of a [`Wah`] vector.
pub struct WahOnesIter<'a> {
    cursor: RunCursor<'a>,
    bit_offset: u64,
    pending: Option<(u32, u64)>,
    nbits: u64,
}

impl<'a> Iterator for WahOnesIter<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if let Some((mut pattern, base)) = self.pending.take() {
                if pattern != 0 {
                    let tz = pattern.trailing_zeros() as u64;
                    pattern &= pattern - 1;
                    self.pending = Some((pattern, base));
                    let pos = base + tz;
                    if pos < self.nbits {
                        return Some(pos);
                    }
                    // Padding bit: keep scanning (there will be none set, but
                    // stay defensive).
                    continue;
                }
            }
            let (pattern, groups, is_fill) = self.cursor.take(1)?;
            debug_assert!(groups == 1 || is_fill);
            if is_fill {
                // take(1) always returns a single group even for fills.
                if pattern != 0 {
                    self.pending = Some((pattern, self.bit_offset));
                }
            } else if pattern != 0 {
                self.pending = Some((pattern, self.bit_offset));
            }
            self.bit_offset += GROUP_BITS;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn zeros_and_ones() {
        let z = Wah::zeros(1000);
        assert_eq!(z.len(), 1000);
        assert_eq!(z.count_ones(), 0);
        let o = Wah::ones(1000);
        assert_eq!(o.count_ones(), 1000);
        assert_eq!(o.iter_ones().count(), 1000);
        // Long uniform runs compress to a handful of words.
        assert!(
            z.num_words() <= 2,
            "zeros should compress: {} words",
            z.num_words()
        );
        assert!(
            o.num_words() <= 2,
            "ones should compress: {} words",
            o.num_words()
        );
    }

    #[test]
    fn from_sorted_indices_roundtrip() {
        let idx = vec![0u64, 3, 31, 32, 62, 63, 500, 999];
        let w = Wah::from_sorted_indices(1000, idx.clone());
        assert_eq!(w.count_ones(), idx.len() as u64);
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn bitvec_roundtrip() {
        let bv = BitVec::from_indices(250, [0, 1, 2, 100, 248, 249]);
        let w = Wah::from_bitvec(&bv);
        assert_eq!(w.to_bitvec(), bv);
        assert_eq!(w.count_ones(), bv.count_ones());
    }

    #[test]
    fn and_or_not_small() {
        let a = Wah::from_sorted_indices(100, vec![1, 5, 50, 99]);
        let b = Wah::from_sorted_indices(100, vec![5, 50, 60]);
        assert_eq!(
            a.and(&b).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![5, 50]
        );
        assert_eq!(
            a.or(&b).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![1, 5, 50, 60, 99]
        );
        assert_eq!(
            a.and_not(&b).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![1, 99]
        );
        let n = a.not();
        assert_eq!(n.count_ones(), 96);
        assert_eq!(n.len(), 100);
        assert!(!n.iter_ones().any(|i| i == 5));
        assert!(n.iter_ones().all(|i| i < 100));
    }

    #[test]
    fn not_of_all_ones_is_empty() {
        let o = Wah::ones(310);
        let n = o.not();
        assert_eq!(n.count_ones(), 0);
        assert_eq!(n.len(), 310);
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = Wah::zeros(10);
        let b = Wah::zeros(11);
        assert!(matches!(
            a.and(&b),
            Err(FastBitError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn sparse_bitmaps_compress_well() {
        // One set bit per 10_000 rows over a million rows: the compressed
        // form must be dramatically smaller than the 125 kB uncompressed one.
        let n = 1_000_000u64;
        let idx: Vec<u64> = (0..n).step_by(10_000).collect();
        let w = Wah::from_sorted_indices(n, idx);
        assert!(
            w.size_in_bytes() < 4096,
            "compressed size {}",
            w.size_in_bytes()
        );
        assert!(w.compression_ratio() > 30.0);
    }

    #[test]
    fn fill_run_coalescing_survives_builder_boundaries() {
        let mut b = WahBuilder::new();
        b.push_run(false, 31 * 3);
        b.push_run(false, 31 * 5);
        b.push_run(true, 31 * 2);
        let w = b.finish();
        assert_eq!(w.len(), 31 * 10);
        assert_eq!(w.count_ones(), 31 * 2);
        assert_eq!(w.num_words(), 2, "adjacent same-value fills must coalesce");
    }

    fn reference_op(a: &[bool], b: &[bool], op: fn(bool, bool) -> bool) -> Vec<u64> {
        a.iter()
            .zip(b.iter())
            .enumerate()
            .filter(|(_, (&x, &y))| op(x, y))
            .map(|(i, _)| i as u64)
            .collect()
    }

    // Randomized property tests. proptest is not available in the offline
    // build environment, so these drive the same properties from a seeded
    // generator: lengths are drawn to straddle the 31-bit group boundaries
    // and densities sweep from all-zero through literal-dense to all-one.

    /// Densities covering the adversarial regimes: empty, ultra-sparse (long
    /// 0-fills), mixed literal, dense (long 1-fills with holes), and full.
    const DENSITIES: [f64; 5] = [0.0, 0.02, 0.5, 0.98, 1.0];

    fn random_bools(rng: &mut StdRng, len: usize, density: f64) -> Vec<bool> {
        (0..len)
            .map(|_| rng.gen_range(0.0..1.0) < density)
            .collect()
    }

    /// Lengths that straddle the 31-bit WAH group boundary and multi-group
    /// fills, plus a few arbitrary ones.
    fn interesting_length(rng: &mut StdRng, case: usize) -> usize {
        let boundaries = [1, 30, 31, 32, 61, 62, 63, 93, 310, 311, 400];
        if case.is_multiple_of(2) {
            boundaries[case / 2 % boundaries.len()]
        } else {
            rng.gen_range(1..500)
        }
    }

    #[test]
    fn write_dense_words_matches_iter_ones() {
        let mut rng = StdRng::seed_from_u64(0xDE45E);
        for case in 0..200 {
            let len = if case == 0 {
                0
            } else {
                interesting_length(&mut rng, case)
            };
            let bits = random_bools(&mut rng, len, DENSITIES[case % DENSITIES.len()]);
            let w = Wah::from_bools(&bits);
            let mut dense = vec![0u64; len.div_ceil(64)];
            w.write_dense_words(&mut dense);
            for (i, &b) in bits.iter().enumerate() {
                let got = dense[i / 64] >> (i % 64) & 1 == 1;
                assert_eq!(got, b, "case {case} len {len} bit {i}");
            }
            // Bits beyond the logical length stay clear.
            if len % 64 != 0 {
                assert_eq!(
                    dense[len / 64] & !((1u64 << (len % 64)) - 1),
                    0,
                    "case {case}"
                );
            }
        }
        // Long fills exercise the whole-word bulk path.
        let ones = Wah::ones(100_000);
        let mut dense = vec![0u64; 100_000usize.div_ceil(64)];
        ones.write_dense_words(&mut dense);
        assert_eq!(
            dense.iter().map(|w| w.count_ones() as u64).sum::<u64>(),
            100_000
        );
    }

    #[test]
    fn randomized_roundtrip_matches_reference() {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for case in 0..200 {
            let len = if case == 0 {
                0
            } else {
                interesting_length(&mut rng, case)
            };
            let density = DENSITIES[case % DENSITIES.len()];
            let bits = random_bools(&mut rng, len, density);
            let w = Wah::from_bools(&bits);
            assert_eq!(w.len(), bits.len() as u64);
            let expected: Vec<u64> = bits
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(
                w.iter_ones().collect::<Vec<_>>(),
                expected,
                "case {case} len {len}"
            );
            assert_eq!(w.count_ones(), expected.len() as u64);
        }
    }

    #[test]
    fn randomized_logical_ops_match_reference() {
        let mut rng = StdRng::seed_from_u64(0xB0B5);
        for case in 0..200 {
            let len = interesting_length(&mut rng, case);
            let da = DENSITIES[case % DENSITIES.len()];
            let db = DENSITIES[(case / DENSITIES.len()) % DENSITIES.len()];
            let a_bits = random_bools(&mut rng, len, da);
            let b_bits = random_bools(&mut rng, len, db);
            let a = Wah::from_bools(&a_bits);
            let b = Wah::from_bools(&b_bits);
            assert_eq!(
                a.and(&b).unwrap().iter_ones().collect::<Vec<_>>(),
                reference_op(&a_bits, &b_bits, |x, y| x && y),
                "AND case {case} len {len} densities {da}/{db}"
            );
            assert_eq!(
                a.or(&b).unwrap().iter_ones().collect::<Vec<_>>(),
                reference_op(&a_bits, &b_bits, |x, y| x || y),
                "OR case {case} len {len} densities {da}/{db}"
            );
            assert_eq!(
                a.and_not(&b).unwrap().iter_ones().collect::<Vec<_>>(),
                reference_op(&a_bits, &b_bits, |x, y| x && !y),
                "AND-NOT case {case} len {len} densities {da}/{db}"
            );
            assert_eq!(
                a.xor(&b).unwrap().iter_ones().collect::<Vec<_>>(),
                reference_op(&a_bits, &b_bits, |x, y| x ^ y),
                "XOR case {case} len {len} densities {da}/{db}"
            );
        }
    }

    #[test]
    fn randomized_not_is_involution() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        for case in 0..200 {
            let len = interesting_length(&mut rng, case);
            let bits = random_bools(&mut rng, len, DENSITIES[case % DENSITIES.len()]);
            let w = Wah::from_bools(&bits);
            let back = w.not().not();
            assert_eq!(
                back.iter_ones().collect::<Vec<_>>(),
                w.iter_ones().collect::<Vec<_>>(),
                "case {case} len {len}"
            );
            assert_eq!(w.count_ones() + w.not().count_ones(), bits.len() as u64);
        }
    }

    #[test]
    fn randomized_runs_compress() {
        let mut rng = StdRng::seed_from_u64(0xD00D);
        for case in 0..100 {
            let num_runs = rng.gen_range(1..20usize);
            let mut builder = WahBuilder::new();
            let mut reference: Vec<bool> = Vec::new();
            for _ in 0..num_runs {
                let bit = rng.gen_range(0..2u32) == 1;
                // Run lengths biased toward group-boundary multiples.
                let count = match rng.gen_range(0..3u32) {
                    0 => rng.gen_range(1..2000u64),
                    1 => 31 * rng.gen_range(1..64u64),
                    _ => 31 * rng.gen_range(1..64u64) + rng.gen_range(0..31u64),
                };
                builder.push_run(bit, count);
                reference.extend(std::iter::repeat_n(bit, count as usize));
            }
            let w = builder.finish();
            assert_eq!(w.len(), reference.len() as u64, "case {case}");
            let expected: Vec<u64> = reference
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(w.iter_ones().collect::<Vec<_>>(), expected, "case {case}");
        }
    }
}
