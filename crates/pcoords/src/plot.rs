//! The parallel-coordinates plot.
//!
//! A plot is configured with an ordered list of axes (one per variable) and
//! rendered from one or more [`Layer`]s. The bottom layer is usually the
//! *context* view (a histogram-based rendering of the whole dataset or of a
//! coarse pre-selection) and subsequent layers are *focus* views (the current
//! selection) in different colours, or one layer per timestep for temporal
//! parallel coordinates.
//!
//! The rendering cost of a histogram layer is proportional to the number of
//! non-empty bins — never to the number of data records — which is the
//! property that makes the approach usable on extremely large data.

use histogram::Hist2D;

use crate::color::{brightness, timestep_color, Rgba};
use crate::framebuffer::{BlendMode, Framebuffer};

/// One axis of the plot.
#[derive(Debug, Clone)]
pub struct AxisSpec {
    /// Variable name displayed on the axis.
    pub name: String,
    /// Lowest value mapped onto the axis.
    pub min: f64,
    /// Highest value mapped onto the axis.
    pub max: f64,
}

impl AxisSpec {
    /// Create an axis for `name` covering `[min, max]`.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        Self {
            name: name.into(),
            min,
            max,
        }
    }

    /// Create an axis covering the observed range of `values` (falling back
    /// to `[0, 1]` for empty or degenerate input).
    pub fn from_data(name: impl Into<String>, values: &[f64]) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo > hi {
            lo = 0.0;
            hi = 1.0;
        } else if lo == hi {
            hi = lo + 1.0;
        }
        Self::new(name, lo, hi)
    }

    fn normalize(&self, value: f64) -> f64 {
        ((value - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }
}

/// The data rendered by one layer.
#[derive(Debug, Clone)]
pub enum LayerData {
    /// Histogram-based rendering: one [`Hist2D`] per adjacent axis pair, in
    /// axis order (so `hists.len() == axes.len() - 1`). Uniform and adaptive
    /// histograms are both accepted; adaptive bins simply produce
    /// quadrilaterals of unequal height, ordered by density.
    Histograms(Vec<Hist2D>),
    /// Traditional polyline rendering: one slice of values per axis, all of
    /// equal length (one polyline per record). This is the baseline whose
    /// cost grows with the record count.
    Polylines(Vec<Vec<f64>>),
}

/// One renderable layer of the plot.
#[derive(Debug, Clone)]
pub struct Layer {
    /// What to draw.
    pub data: LayerData,
    /// Base colour of the layer.
    pub color: Rgba,
    /// Gamma controlling the brightness falloff of sparse bins (see
    /// [`brightness`]); ignored for polyline layers.
    pub gamma: f64,
    /// Bins (or lines) dimmer than this brightness are skipped entirely,
    /// implementing the paper's "remove sparse bins" behaviour at low gamma.
    pub min_brightness: f64,
}

impl Layer {
    /// A histogram-based layer with default gamma 1.
    pub fn histograms(hists: Vec<Hist2D>, color: Rgba) -> Self {
        Self {
            data: LayerData::Histograms(hists),
            color,
            gamma: 1.0,
            min_brightness: 0.002,
        }
    }

    /// A polyline layer (one value vector per axis).
    pub fn polylines(columns: Vec<Vec<f64>>, color: Rgba) -> Self {
        Self {
            data: LayerData::Polylines(columns),
            color,
            gamma: 1.0,
            min_brightness: 0.0,
        }
    }

    /// Set the gamma value.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Set the sparse-bin cutoff.
    pub fn with_min_brightness(mut self, min: f64) -> Self {
        self.min_brightness = min;
        self
    }
}

/// Geometry and styling of the plot.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Margin around the plot area in pixels.
    pub margin: usize,
    /// Background colour.
    pub background: Rgba,
    /// Colour of the axis lines.
    pub axis_color: Rgba,
    /// Whether polyline layers use additive blending (dense data saturates
    /// instead of occluding).
    pub additive_polylines: bool,
}

impl Default for PlotConfig {
    fn default() -> Self {
        Self {
            width: 1024,
            height: 512,
            margin: 24,
            background: Rgba::BLACK,
            axis_color: Rgba::new(0.35, 0.35, 0.35, 1.0),
            additive_polylines: true,
        }
    }
}

/// A parallel-coordinates plot: an ordered set of axes plus render settings.
#[derive(Debug, Clone)]
pub struct ParallelCoordsPlot {
    config: PlotConfig,
    axes: Vec<AxisSpec>,
}

impl ParallelCoordsPlot {
    /// Create a plot over `axes` with the given configuration.
    ///
    /// # Panics
    /// Panics when fewer than two axes are supplied.
    pub fn new(config: PlotConfig, axes: Vec<AxisSpec>) -> Self {
        assert!(
            axes.len() >= 2,
            "parallel coordinates need at least two axes"
        );
        Self { config, axes }
    }

    /// The configured axes.
    pub fn axes(&self) -> &[AxisSpec] {
        &self.axes
    }

    /// The plot configuration.
    pub fn config(&self) -> &PlotConfig {
        &self.config
    }

    /// Pixel x position of axis `i`.
    fn axis_x(&self, i: usize) -> f64 {
        let usable = (self.config.width - 2 * self.config.margin) as f64;
        self.config.margin as f64 + usable * i as f64 / (self.axes.len() - 1) as f64
    }

    /// Map a value on axis `i` to a pixel y position (large values at the
    /// top).
    fn value_to_y(&self, axis: usize, value: f64) -> f64 {
        let usable = (self.config.height - 2 * self.config.margin) as f64;
        let t = self.axes[axis].normalize(value);
        self.config.margin as f64 + usable * (1.0 - t)
    }

    /// Render `layers` bottom-to-top into a framebuffer.
    pub fn render(&self, layers: &[Layer]) -> Framebuffer {
        let mut fb = Framebuffer::with_background(
            self.config.width,
            self.config.height,
            self.config.background,
        );
        self.draw_axes(&mut fb);
        for layer in layers {
            match &layer.data {
                LayerData::Histograms(hists) => self.render_histogram_layer(&mut fb, hists, layer),
                LayerData::Polylines(columns) => {
                    self.render_polyline_layer(&mut fb, columns, layer)
                }
            }
        }
        fb
    }

    /// Render a temporal parallel-coordinates plot: one histogram layer per
    /// timestep, each in a distinct colour (Figure 9).
    pub fn render_temporal(
        &self,
        per_timestep: &[(usize, Vec<Hist2D>)],
        gamma: f64,
    ) -> Framebuffer {
        let n = per_timestep.len();
        let layers: Vec<Layer> = per_timestep
            .iter()
            .enumerate()
            .map(|(i, (_step, hists))| {
                Layer::histograms(hists.clone(), timestep_color(i, n)).with_gamma(gamma)
            })
            .collect();
        self.render(&layers)
    }

    fn draw_axes(&self, fb: &mut Framebuffer) {
        let top = self.config.margin as i64;
        let bottom = (self.config.height - self.config.margin) as i64;
        for i in 0..self.axes.len() {
            let x = self.axis_x(i).round() as i64;
            fb.fill_rect(
                x,
                top,
                x + 1,
                bottom,
                self.config.axis_color,
                BlendMode::Over,
            );
        }
    }

    fn render_histogram_layer(&self, fb: &mut Framebuffer, hists: &[Hist2D], layer: &Layer) {
        let pairs = self.axes.len() - 1;
        for (pair, hist) in hists.iter().enumerate().take(pairs) {
            let x0 = self.axis_x(pair);
            let x1 = self.axis_x(pair + 1);
            // Normalise brightness by the larger of count and density maxima
            // so uniform layers use counts and adaptive layers use densities,
            // matching the paper's ordering rule.
            let uniform = hist.x_edges().is_uniform() && hist.y_edges().is_uniform();
            let max_count = hist.max_count() as f64;
            let max_density = hist.max_density();
            for bin in hist.bins_back_to_front() {
                let weight = if uniform {
                    brightness(bin.count as f64, max_count, layer.gamma)
                } else {
                    brightness(bin.density, max_density, layer.gamma)
                };
                if weight < layer.min_brightness {
                    continue;
                }
                let y0a = self.value_to_y(pair, bin.x_range.1);
                let y0b = self.value_to_y(pair, bin.x_range.0);
                let y1a = self.value_to_y(pair + 1, bin.y_range.1);
                let y1b = self.value_to_y(pair + 1, bin.y_range.0);
                let color = layer
                    .color
                    .scaled(weight as f32)
                    .with_alpha((0.15 + 0.85 * weight as f32).clamp(0.0, 1.0) * layer.color.a);
                fb.fill_axis_quad(x0, y0a, y0b, x1, y1a, y1b, color, BlendMode::Over);
            }
        }
    }

    fn render_polyline_layer(&self, fb: &mut Framebuffer, columns: &[Vec<f64>], layer: &Layer) {
        if columns.len() < 2 {
            return;
        }
        let records = columns[0].len();
        let mode = if self.config.additive_polylines {
            BlendMode::Additive
        } else {
            BlendMode::Over
        };
        // Fade individual lines so that density shows through overdraw.
        let alpha = (40.0 / records.max(1) as f32).clamp(0.02, 1.0) * layer.color.a;
        let color = layer.color.with_alpha(alpha);
        for r in 0..records {
            for pair in 0..columns.len().min(self.axes.len()) - 1 {
                let x0 = self.axis_x(pair);
                let x1 = self.axis_x(pair + 1);
                let y0 = self.value_to_y(pair, columns[pair][r]);
                let y1 = self.value_to_y(pair + 1, columns[pair + 1][r]);
                fb.draw_line(x0, y0, x1, y1, color, mode);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histogram::{AdaptiveHist2D, BinEdges};

    fn axes3() -> Vec<AxisSpec> {
        vec![
            AxisSpec::new("x", 0.0, 10.0),
            AxisSpec::new("px", 0.0, 100.0),
            AxisSpec::new("y", -1.0, 1.0),
        ]
    }

    fn sample_columns(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Deliberately skewed distributions so bins have very different
        // counts (gamma and sparse-bin pruning tests rely on that).
        let x: Vec<f64> = (0..n)
            .map(|i| ((i % 100) as f64 / 10.0).powi(2) / 10.0)
            .collect();
        let px: Vec<f64> = (0..n)
            .map(|i| (((i * 13) % 100) as f64).powi(2) / 100.0)
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| (((i % 20) as f64 - 10.0) / 10.0).powi(3))
            .collect();
        (x, px, y)
    }

    fn pair_hists(x: &[f64], px: &[f64], y: &[f64], bins: usize) -> Vec<Hist2D> {
        let ex = BinEdges::uniform(0.0, 10.0, bins).unwrap();
        let ep = BinEdges::uniform(0.0, 100.0, bins).unwrap();
        let ey = BinEdges::uniform(-1.0, 1.0, bins).unwrap();
        vec![
            Hist2D::from_data(ex, ep.clone(), x, px),
            Hist2D::from_data(ep, ey, px, y),
        ]
    }

    #[test]
    fn histogram_layer_renders_content() {
        let (x, px, y) = sample_columns(5000);
        let plot = ParallelCoordsPlot::new(PlotConfig::default(), axes3());
        let layer = Layer::histograms(pair_hists(&x, &px, &y, 64), Rgba::CONTEXT_GRAY);
        let fb = plot.render(&[layer]);
        assert!(
            fb.coverage(Rgba::BLACK) > 0.05,
            "histogram plot must light up pixels"
        );
    }

    #[test]
    fn polyline_layer_renders_content() {
        let (x, px, y) = sample_columns(300);
        let plot = ParallelCoordsPlot::new(PlotConfig::default(), axes3());
        let layer = Layer::polylines(vec![x, px, y], Rgba::WHITE);
        let fb = plot.render(&[layer]);
        assert!(fb.coverage(Rgba::BLACK) > 0.05);
    }

    #[test]
    fn lower_gamma_dims_the_plot() {
        let (x, px, y) = sample_columns(5000);
        let plot = ParallelCoordsPlot::new(PlotConfig::default(), axes3());
        let bright = plot
            .render(&[Layer::histograms(pair_hists(&x, &px, &y, 64), Rgba::WHITE).with_gamma(1.0)]);
        let dim = plot.render(&[
            Layer::histograms(pair_hists(&x, &px, &y, 64), Rgba::WHITE).with_gamma(0.25)
        ]);
        assert!(
            dim.mean_luminance() < bright.mean_luminance(),
            "lower gamma must reduce overall brightness (Figure 2c)"
        );
    }

    #[test]
    fn min_brightness_removes_sparse_bins() {
        let (x, px, y) = sample_columns(2000);
        let plot = ParallelCoordsPlot::new(PlotConfig::default(), axes3());
        let all = plot.render(&[Layer::histograms(pair_hists(&x, &px, &y, 64), Rgba::WHITE)]);
        let pruned =
            plot.render(
                &[Layer::histograms(pair_hists(&x, &px, &y, 64), Rgba::WHITE)
                    .with_min_brightness(0.9)],
            );
        assert!(pruned.coverage(Rgba::BLACK) < all.coverage(Rgba::BLACK));
    }

    #[test]
    fn focus_layer_draws_over_context() {
        let (x, px, y) = sample_columns(5000);
        let plot = ParallelCoordsPlot::new(PlotConfig::default(), axes3());
        let context = Layer::histograms(pair_hists(&x, &px, &y, 32), Rgba::CONTEXT_GRAY);
        // Focus: only records with px > 80.
        let keep: Vec<usize> = (0..x.len()).filter(|&i| px[i] > 80.0).collect();
        let fx: Vec<f64> = keep.iter().map(|&i| x[i]).collect();
        let fp: Vec<f64> = keep.iter().map(|&i| px[i]).collect();
        let fy: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
        let focus = Layer::histograms(pair_hists(&fx, &fp, &fy, 32), Rgba::FOCUS_RED);
        let fb = plot.render(&[context, focus]);
        // Some pixel in the upper region of the px axis should be reddish.
        let x_axis1 = fb.width() / 2;
        let mut found_red = false;
        for yy in 0..fb.height() / 3 {
            let p = fb.pixel(x_axis1, yy);
            if p.r > 0.3 && p.r > p.g * 1.5 {
                found_red = true;
                break;
            }
        }
        assert!(
            found_red,
            "focus colour must be visible on top of the context"
        );
    }

    #[test]
    fn adaptive_histograms_render_without_uniform_assumptions() {
        let (x, px, _) = sample_columns(4000);
        let a1 = AdaptiveHist2D::build(&x, &px, 16, 8).unwrap().into_hist();
        let a2 = AdaptiveHist2D::build(&px, &x, 16, 8).unwrap().into_hist();
        let plot = ParallelCoordsPlot::new(
            PlotConfig::default(),
            vec![
                AxisSpec::from_data("x", &x),
                AxisSpec::from_data("px", &px),
                AxisSpec::from_data("x2", &x),
            ],
        );
        let fb = plot.render(&[Layer::histograms(vec![a1, a2], Rgba::WHITE)]);
        assert!(fb.coverage(Rgba::BLACK) > 0.05);
    }

    #[test]
    fn temporal_rendering_uses_distinct_colors() {
        let (x, px, y) = sample_columns(2000);
        let plot = ParallelCoordsPlot::new(PlotConfig::default(), axes3());
        let per_step: Vec<(usize, Vec<Hist2D>)> =
            (0..4).map(|s| (s, pair_hists(&x, &px, &y, 24))).collect();
        let fb = plot.render_temporal(&per_step, 0.8);
        assert!(fb.coverage(Rgba::BLACK) > 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two axes")]
    fn single_axis_is_rejected() {
        ParallelCoordsPlot::new(PlotConfig::default(), vec![AxisSpec::new("x", 0.0, 1.0)]);
    }

    #[test]
    fn axis_from_data_handles_degenerate_input() {
        let a = AxisSpec::from_data("c", &[5.0, 5.0, 5.0]);
        assert!(a.max > a.min);
        let b = AxisSpec::from_data("e", &[]);
        assert_eq!((b.min, b.max), (0.0, 1.0));
        let c = AxisSpec::from_data("n", &[f64::NAN, 1.0, 3.0]);
        assert_eq!((c.min, c.max), (1.0, 3.0));
    }
}
