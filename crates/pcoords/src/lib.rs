//! Software-rendered parallel coordinates.
//!
//! This crate implements the paper's visual-information-display side:
//!
//! * [`framebuffer::Framebuffer`] — a float RGBA image with alpha-over and
//!   additive blending and PPM/PGM export, standing in for the GPU renderer
//!   of VisIt (rendering cost must depend on histogram resolution, not data
//!   size, and a software rasterizer preserves that property).
//! * [`plot::ParallelCoordsPlot`] — the parallel-coordinates plot itself.
//!   Layers can be **histogram-based** (one quadrilateral per non-empty bin
//!   of a 2D histogram between each pair of adjacent axes, drawn
//!   back-to-front by record count or density, brightness controlled by a
//!   gamma value) or **polyline-based** (the traditional rendering used as
//!   the comparison point in Figure 2a). Context and focus views are just
//!   two layers in different colours; temporal parallel coordinates are one
//!   layer per timestep.
//! * [`color`] — colour maps (rainbow for momentum colouring, per-timestep
//!   qualitative colours) and the gamma brightness model.

#![deny(missing_docs)]

pub mod color;
pub mod framebuffer;
pub mod plot;

pub use color::{brightness, rainbow, timestep_color, Rgba};
pub use framebuffer::Framebuffer;
pub use plot::{AxisSpec, Layer, LayerData, ParallelCoordsPlot, PlotConfig};
