//! A simple float RGBA framebuffer with the primitives the parallel
//! coordinates renderer needs: axis-aligned vertical trapezoids (the
//! quadrilaterals connecting bin ranges on two adjacent axes), lines
//! (for the traditional polyline renderer) and rectangles (axes).

use crate::color::Rgba;
use std::io::Write;
use std::path::Path;

/// How a primitive is combined with the pixels already in the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlendMode {
    /// Source-over compositing using the colour's alpha.
    Over,
    /// Additive blending (used for dense polyline plots so overdraw saturates
    /// rather than occludes).
    Additive,
}

/// A width × height RGBA image with `f32` channels.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<[f32; 4]>,
}

impl Framebuffer {
    /// A black, opaque framebuffer.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            pixels: vec![[0.0, 0.0, 0.0, 1.0]; width * height],
        }
    }

    /// A framebuffer cleared to `background`.
    pub fn with_background(width: usize, height: usize, background: Rgba) -> Self {
        Self {
            width,
            height,
            pixels: vec![[background.r, background.g, background.b, background.a]; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read one pixel.
    pub fn pixel(&self, x: usize, y: usize) -> Rgba {
        let p = self.pixels[y * self.width + x];
        Rgba::new(p[0], p[1], p[2], p[3])
    }

    /// Blend `color` into pixel `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn blend(&mut self, x: i64, y: i64, color: Rgba, mode: BlendMode) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let p = &mut self.pixels[y as usize * self.width + x as usize];
        match mode {
            BlendMode::Over => {
                let a = color.a.clamp(0.0, 1.0);
                p[0] = color.r * a + p[0] * (1.0 - a);
                p[1] = color.g * a + p[1] * (1.0 - a);
                p[2] = color.b * a + p[2] * (1.0 - a);
                p[3] = (a + p[3] * (1.0 - a)).clamp(0.0, 1.0);
            }
            BlendMode::Additive => {
                p[0] = (p[0] + color.r * color.a).min(1.0);
                p[1] = (p[1] + color.g * color.a).min(1.0);
                p[2] = (p[2] + color.b * color.a).min(1.0);
            }
        }
    }

    /// Fill an axis-aligned rectangle spanning `[x0, x1) × [y0, y1)`.
    pub fn fill_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, color: Rgba, mode: BlendMode) {
        for y in y0.min(y1)..y0.max(y1) {
            for x in x0.min(x1)..x0.max(x1) {
                self.blend(x, y, color, mode);
            }
        }
    }

    /// Fill a vertical-sided trapezoid: the region between the vertical line
    /// `x = x0` (covering pixel rows `y0a..y0b`) and `x = x1` (rows
    /// `y1a..y1b`), with the top and bottom edges linearly interpolated.
    ///
    /// This is exactly the shape of one histogram bin drawn between two
    /// adjacent parallel axes: the bin's value range on the left axis maps to
    /// `y0a..y0b` and its range on the right axis to `y1a..y1b` (for adaptive
    /// bins the two spans differ in height).
    // Two x positions and two y spans are inherently eight scalars; bundling
    // them into a struct would obscure the rasterizer call sites.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_axis_quad(
        &mut self,
        x0: f64,
        y0a: f64,
        y0b: f64,
        x1: f64,
        y1a: f64,
        y1b: f64,
        color: Rgba,
        mode: BlendMode,
    ) {
        if x1 <= x0 {
            return;
        }
        let start = x0.floor().max(0.0) as i64;
        let end = x1.ceil().min(self.width as f64) as i64;
        let span = x1 - x0;
        for px in start..end {
            let t = ((px as f64 + 0.5 - x0) / span).clamp(0.0, 1.0);
            let top = y0a + (y1a - y0a) * t;
            let bottom = y0b + (y1b - y0b) * t;
            let (lo, hi) = if top <= bottom {
                (top, bottom)
            } else {
                (bottom, top)
            };
            // Always cover at least one pixel row so very thin bins stay visible.
            let mut lo_px = lo.floor() as i64;
            let mut hi_px = hi.ceil() as i64;
            if hi_px <= lo_px {
                hi_px = lo_px + 1;
            }
            if hi_px == lo_px {
                lo_px -= 1;
            }
            for py in lo_px..hi_px {
                self.blend(px, py, color, mode);
            }
        }
    }

    /// Draw a line from `(x0, y0)` to `(x1, y1)` (simple DDA; the polyline
    /// renderer draws millions of these, which is precisely the scaling
    /// problem histogram-based rendering removes).
    pub fn draw_line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, color: Rgba, mode: BlendMode) {
        let dx = x1 - x0;
        let dy = y1 - y0;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0) as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let x = x0 + dx * t;
            let y = y0 + dy * t;
            self.blend(x.round() as i64, y.round() as i64, color, mode);
        }
    }

    /// Fraction of pixels that differ from the background colour by more than
    /// a small tolerance — a cheap way for tests to assert that something was
    /// actually drawn.
    pub fn coverage(&self, background: Rgba) -> f64 {
        let lit = self
            .pixels
            .iter()
            .filter(|p| {
                (p[0] - background.r).abs() > 0.01
                    || (p[1] - background.g).abs() > 0.01
                    || (p[2] - background.b).abs() > 0.01
            })
            .count();
        lit as f64 / self.pixels.len() as f64
    }

    /// Mean luminance of the image (0 = black, 1 = white).
    pub fn mean_luminance(&self) -> f64 {
        let sum: f64 = self
            .pixels
            .iter()
            .map(|p| 0.2126 * p[0] as f64 + 0.7152 * p[1] as f64 + 0.0722 * p[2] as f64)
            .sum();
        sum / self.pixels.len() as f64
    }

    /// Encode as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width * self.height * 3 + 32);
        out.extend_from_slice(format!("P6\n{} {}\n255\n", self.width, self.height).as_bytes());
        for p in &self.pixels {
            for c in &p[..3] {
                out.push((c.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Write the image to `path` as a PPM file.
    pub fn save_ppm(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(&self.to_ppm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_black() {
        let fb = Framebuffer::new(8, 4);
        assert_eq!(fb.width(), 8);
        assert_eq!(fb.height(), 4);
        assert_eq!(fb.pixel(3, 2), Rgba::new(0.0, 0.0, 0.0, 1.0));
        assert_eq!(fb.coverage(Rgba::BLACK), 0.0);
    }

    #[test]
    fn blending_modes() {
        let mut fb = Framebuffer::new(2, 1);
        fb.blend(0, 0, Rgba::new(1.0, 0.0, 0.0, 0.5), BlendMode::Over);
        let p = fb.pixel(0, 0);
        assert!((p.r - 0.5).abs() < 1e-6);
        fb.blend(1, 0, Rgba::new(0.4, 0.0, 0.0, 1.0), BlendMode::Additive);
        fb.blend(1, 0, Rgba::new(0.4, 0.0, 0.0, 1.0), BlendMode::Additive);
        fb.blend(1, 0, Rgba::new(0.4, 0.0, 0.0, 1.0), BlendMode::Additive);
        assert_eq!(fb.pixel(1, 0).r, 1.0, "additive blending saturates");
        // Out of bounds is ignored, not a panic.
        fb.blend(-1, 0, Rgba::WHITE, BlendMode::Over);
        fb.blend(5, 9, Rgba::WHITE, BlendMode::Over);
    }

    #[test]
    fn axis_quad_covers_expected_region() {
        let mut fb = Framebuffer::new(100, 100);
        fb.fill_axis_quad(
            10.0,
            20.0,
            40.0,
            90.0,
            60.0,
            80.0,
            Rgba::WHITE,
            BlendMode::Over,
        );
        // Left end: rows 20..40 lit at x=10.
        assert!(fb.pixel(10, 30).r > 0.9);
        assert!(fb.pixel(10, 50).r < 0.1);
        // Right end: rows 60..80 lit at x=89.
        assert!(fb.pixel(89, 70).r > 0.9);
        assert!(fb.pixel(89, 30).r < 0.1);
        // Midpoint interpolates.
        assert!(fb.pixel(50, 50).r > 0.9);
        assert!(fb.coverage(Rgba::BLACK) > 0.05);
    }

    #[test]
    fn thin_quads_still_render() {
        let mut fb = Framebuffer::new(50, 50);
        // Degenerate height (same top and bottom) must still paint a 1-pixel line.
        fb.fill_axis_quad(
            5.0,
            25.0,
            25.0,
            45.0,
            10.0,
            10.0,
            Rgba::WHITE,
            BlendMode::Over,
        );
        assert!(fb.coverage(Rgba::BLACK) > 0.0);
        // Zero-width quads are ignored.
        let mut fb2 = Framebuffer::new(50, 50);
        fb2.fill_axis_quad(5.0, 0.0, 10.0, 5.0, 0.0, 10.0, Rgba::WHITE, BlendMode::Over);
        assert_eq!(fb2.coverage(Rgba::BLACK), 0.0);
    }

    #[test]
    fn line_endpoints_are_painted() {
        let mut fb = Framebuffer::new(64, 64);
        fb.draw_line(0.0, 0.0, 63.0, 63.0, Rgba::WHITE, BlendMode::Over);
        assert!(fb.pixel(0, 0).r > 0.9);
        assert!(fb.pixel(63, 63).r > 0.9);
        assert!(fb.pixel(32, 32).r > 0.9);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(10, 5);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n10 5\n255\n"));
        assert_eq!(ppm.len(), b"P6\n10 5\n255\n".len() + 10 * 5 * 3);
    }

    #[test]
    fn mean_luminance_tracks_content() {
        let dark = Framebuffer::new(10, 10);
        let bright = Framebuffer::with_background(10, 10, Rgba::WHITE);
        assert!(bright.mean_luminance() > dark.mean_luminance() + 0.9);
    }
}
