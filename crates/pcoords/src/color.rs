//! Colours, colour maps and the gamma brightness model.

/// An RGBA colour with float channels in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgba {
    /// Red channel.
    pub r: f32,
    /// Green channel.
    pub g: f32,
    /// Blue channel.
    pub b: f32,
    /// Alpha (opacity) channel.
    pub a: f32,
}

impl Rgba {
    /// A colour from channel values.
    pub const fn new(r: f32, g: f32, b: f32, a: f32) -> Self {
        Self { r, g, b, a }
    }

    /// Opaque white.
    pub const WHITE: Rgba = Rgba::new(1.0, 1.0, 1.0, 1.0);
    /// Opaque black.
    pub const BLACK: Rgba = Rgba::new(0.0, 0.0, 0.0, 1.0);
    /// The context-view grey used by the paper's figures.
    pub const CONTEXT_GRAY: Rgba = Rgba::new(0.65, 0.65, 0.65, 1.0);
    /// The focus-view red used in Figures 4 and 8.
    pub const FOCUS_RED: Rgba = Rgba::new(0.9, 0.15, 0.1, 1.0);
    /// The refined-selection green used in Figure 8.
    pub const FOCUS_GREEN: Rgba = Rgba::new(0.1, 0.8, 0.2, 1.0);

    /// Scale the colour's opacity.
    pub fn with_alpha(self, a: f32) -> Self {
        Self { a, ..self }
    }

    /// Multiply the colour channels by `f` (keeping alpha).
    pub fn scaled(self, f: f32) -> Self {
        Self {
            r: self.r * f,
            g: self.g * f,
            b: self.b * f,
            a: self.a,
        }
    }
}

/// The rainbow colour map used by the paper's pseudocolor plots
/// (blue = low, red = high). `t` is clamped to `[0, 1]`.
pub fn rainbow(t: f64) -> Rgba {
    let t = t.clamp(0.0, 1.0) as f32;
    // Piecewise-linear blue -> cyan -> green -> yellow -> red.
    let (r, g, b) = if t < 0.25 {
        (0.0, t / 0.25, 1.0)
    } else if t < 0.5 {
        (0.0, 1.0, 1.0 - (t - 0.25) / 0.25)
    } else if t < 0.75 {
        ((t - 0.5) / 0.25, 1.0, 0.0)
    } else {
        (1.0, 1.0 - (t - 0.75) / 0.25, 0.0)
    };
    Rgba::new(r, g, b, 1.0)
}

/// A qualitative colour for timestep `i` of `n` in a temporal parallel
/// coordinates plot (Figure 9 assigns one hue per timestep).
pub fn timestep_color(i: usize, n: usize) -> Rgba {
    let n = n.max(1);
    let hue = (i % n) as f64 / n as f64;
    hsv(hue * 300.0, 0.85, 0.95)
}

fn hsv(h_deg: f64, s: f64, v: f64) -> Rgba {
    let c = v * s;
    let hp = (h_deg / 60.0) % 6.0;
    let x = c * (1.0 - ((hp % 2.0) - 1.0).abs());
    let (r, g, b) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    Rgba::new((r + m) as f32, (g + m) as f32, (b + m) as f32, 1.0)
}

/// Brightness of a bin holding `value` records (or density) out of a maximum
/// of `max`, under gamma `g`.
///
/// `g = 1` gives a linear ramp. Lowering `g` dims the whole plot and pushes
/// sparse bins toward zero so they visually disappear, which is exactly how
/// the paper describes its gamma control (Figure 2c). Values are clamped to
/// `[0, 1]`.
pub fn brightness(value: f64, max: f64, gamma: f64) -> f64 {
    if max <= 0.0 || value <= 0.0 {
        return 0.0;
    }
    let ratio = (value / max).clamp(0.0, 1.0);
    let g = gamma.clamp(1e-3, 10.0);
    ratio.powf(1.0 / g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rainbow_endpoints() {
        let lo = rainbow(0.0);
        let hi = rainbow(1.0);
        assert!(lo.b > 0.9 && lo.r < 0.1, "low values are blue");
        assert!(hi.r > 0.9 && hi.b < 0.1, "high values are red");
        // Clamping.
        assert_eq!(rainbow(-5.0), rainbow(0.0));
        assert_eq!(rainbow(7.0), rainbow(1.0));
    }

    #[test]
    fn timestep_colors_are_distinct() {
        let a = timestep_color(0, 9);
        let b = timestep_color(4, 9);
        let dist = (a.r - b.r).abs() + (a.g - b.g).abs() + (a.b - b.b).abs();
        assert!(dist > 0.2, "timestep colours must be visually distinct");
    }

    #[test]
    fn brightness_gamma_behaviour() {
        // Full bins are always full brightness.
        assert_eq!(brightness(100.0, 100.0, 1.0), 1.0);
        assert_eq!(brightness(100.0, 100.0, 0.2), 1.0);
        // Linear at gamma 1.
        assert!((brightness(50.0, 100.0, 1.0) - 0.5).abs() < 1e-12);
        // Lower gamma dims sparse bins dramatically.
        let sparse_linear = brightness(1.0, 1000.0, 1.0);
        let sparse_dim = brightness(1.0, 1000.0, 0.3);
        assert!(sparse_dim < sparse_linear / 10.0);
        // Degenerate inputs.
        assert_eq!(brightness(0.0, 100.0, 1.0), 0.0);
        assert_eq!(brightness(10.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn color_helpers() {
        let c = Rgba::FOCUS_RED.with_alpha(0.5);
        assert_eq!(c.a, 0.5);
        let s = Rgba::WHITE.scaled(0.25);
        assert!((s.r - 0.25).abs() < 1e-6 && s.a == 1.0);
    }
}
