//! Quickstart: generate a small synthetic LWFA dataset, build indexes, make a
//! beam selection with a compound range query, trace the selected particles
//! through time and render a focus+context parallel-coordinates plot.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use vdx_core::prelude::*;

fn main() -> vdx_core::Result<()> {
    let out_dir = std::env::temp_dir().join("vdx-quickstart");
    let image_dir = std::path::PathBuf::from("target/vdx-examples");
    std::fs::create_dir_all(&image_dir)?;

    // 1. Generate a tiny 2D laser-wakefield dataset (the paper's data is
    //    400k–177M particles per timestep; `tiny()` keeps the quickstart
    //    runnable in seconds) and build WAH bitmap indexes as the one-time
    //    preprocessing step.
    println!("generating synthetic LWFA dataset in {}", out_dir.display());
    let sim = SimConfig::tiny();
    let explorer = DataExplorer::generate(&out_dir, sim.clone(), ExplorerConfig::default())?;
    println!(
        "  {} timesteps, {:.1} MB on disk (data + indexes)",
        explorer.steps().len(),
        explorer.catalog().total_size_bytes()? as f64 / 1e6
    );

    // 2. Beam selection at the final timestep via a momentum threshold, the
    //    same kind of query the paper issues from the parallel-coordinates
    //    sliders (Figure 5: px > 8.872e10 on the full-scale data).
    let last = *explorer.steps().last().expect("non-empty catalog");
    let threshold = lwfa::physics::suggested_beam_threshold(&sim, last);
    let query = format!("px > {threshold:e}");
    let beam = explorer.select(last, &query)?;
    println!(
        "  query `{query}` at t={last} selected {} particles",
        beam.ids.len()
    );

    // 3. Particle tracking: trace the selected identifiers across every
    //    timestep (the operation that used to take hours with scripts and
    //    takes seconds with the identifier index).
    let start = std::time::Instant::now();
    let tracks = explorer.track(&beam.ids)?;
    println!(
        "  traced {} particles over {} timesteps in {:.3} s ({} matches)",
        tracks.traces.len(),
        explorer.steps().len(),
        start.elapsed().as_secs_f64(),
        tracks.total_hits()
    );

    // 4. Render a histogram-based focus+context parallel coordinates plot.
    let axes = ["x", "y", "px", "py", "xrel"];
    let image = explorer.render_focus_context(last, &axes, 256, Some(&query), 0.8)?;
    let path = image_dir.join("quickstart_focus_context.ppm");
    explorer.save_image(&image, &path)?;
    println!("  wrote {}", path.display());

    // 5. A quick look at how the beam evolved.
    let stats = explorer.analyzer().beam_statistics(&beam.ids)?;
    println!("  step   count   mean px       px spread");
    for s in stats
        .iter()
        .filter(|s| s.step % 5 == 0 || s.step + 1 == explorer.steps().len())
    {
        println!(
            "  {:>4}  {:>6}  {:>12.4e}  {:>12.4e}",
            s.step, s.count, s.mean_px, s.px_spread
        );
    }
    Ok(())
}
