//! The paper's Section IV use case, end to end.
//!
//! Reproduces the analysis workflow on the synthetic 2D dataset (or the 3D
//! preset with `--3d`):
//!
//! 1. **Beam selection** (Fig. 5): threshold `px` at the final timestep.
//! 2. **Beam assessment** (Fig. 5): compare momentum at the dephasing time
//!    versus the final time, showing that the first beam outruns the wave and
//!    decelerates.
//! 3. **Beam formation** (Figs. 6–7): trace the beam back to its injection
//!    timesteps.
//! 4. **Beam refinement** (Fig. 8): apply an additional `x` threshold at the
//!    injection time to isolate the first wake period, and compare the
//!    refined traces with the full beam.
//! 5. **Beam evolution** (Fig. 9): temporal parallel coordinates of the beam
//!    over the injection-to-acceleration timesteps.
//!
//! Run with:
//! ```text
//! cargo run --release --example beam_analysis [-- --3d] [-- --particles N]
//! ```

use vdx_core::prelude::*;

fn main() -> vdx_core::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let three_d = args.iter().any(|a| a == "--3d");
    let particles = args
        .iter()
        .position(|a| a == "--particles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(40_000);

    let (sim, tag) = if three_d {
        (SimConfig::paper_3d(particles), "3d")
    } else {
        (SimConfig::paper_2d(particles), "2d")
    };
    let out_dir = std::env::temp_dir().join(format!("vdx-beam-analysis-{tag}"));
    let image_dir = std::path::PathBuf::from("target/vdx-examples");
    std::fs::create_dir_all(&image_dir)?;

    println!("== generating {tag} dataset ({particles} particles/step) ==");
    let explorer = DataExplorer::generate(&out_dir, sim.clone(), ExplorerConfig::default())?;
    let steps = explorer.steps();
    let last = *steps.last().expect("catalog not empty");

    // --- 1. Beam selection --------------------------------------------------
    let threshold = lwfa::physics::suggested_beam_threshold(&sim, last);
    let selection_query = format!("px > {threshold:e}");
    let beam = explorer.select(last, &selection_query)?;
    println!(
        "beam selection at t={last}: `{selection_query}` -> {} particles",
        beam.ids.len()
    );
    let axes: Vec<&str> = if three_d {
        vec!["x", "y", "z", "px", "py", "pz", "xrel"]
    } else {
        vec!["x", "y", "px", "py", "xrel"]
    };
    let img = explorer.render_focus_context(last, &axes, 256, Some(&selection_query), 0.8)?;
    explorer.save_image(&img, &image_dir.join(format!("beam_selection_{tag}.ppm")))?;

    // --- 2. Beam assessment: acceleration then dephasing ---------------------
    let stats = explorer.analyzer().beam_statistics(&beam.ids)?;
    let peak = stats
        .iter()
        .max_by(|a, b| a.mean_px.partial_cmp(&b.mean_px).unwrap())
        .expect("non-empty statistics");
    let final_stat = stats.last().expect("non-empty statistics");
    println!(
        "beam assessment: peak mean px {:.3e} at t={}, final mean px {:.3e} at t={}",
        peak.mean_px, peak.step, final_stat.mean_px, final_stat.step
    );
    if peak.step < final_stat.step {
        println!(
            "  -> the beam outran the wave and decelerated after t={}",
            peak.step
        );
    }

    // --- 3. Beam formation: trace back to injection ---------------------------
    let tracks = explorer.track(&beam.ids)?;
    let first_seen: Vec<usize> = tracks
        .traces
        .iter()
        .filter_map(|t| t.first_step())
        .collect();
    let injection = first_seen.iter().copied().min().unwrap_or(0);
    println!(
        "beam formation: traced {} particles; earliest appearance at t={injection}",
        tracks.traces.len()
    );

    // --- 4. Beam refinement ---------------------------------------------------
    let refine_step = sim.beam1_injection_step + 1;
    let (bucket1_lo, _) = sim.bucket_range(refine_step, 1);
    let refine_query = format!("x > {bucket1_lo:e}");
    let refined = explorer.refine(&beam, refine_step, &refine_query)?;
    println!(
        "beam refinement at t={refine_step}: `{refine_query}` keeps {}/{} particles (first wake period)",
        refined.ids.len(),
        beam.ids.len()
    );
    let refined_stats = explorer.analyzer().beam_statistics(&refined.ids)?;
    if let (Some(all_last), Some(ref_last)) = (stats.last(), refined_stats.last()) {
        println!(
            "  transverse spread at t={}: full beam {:.3e}, refined subset {:.3e}",
            all_last.step, all_last.y_spread, ref_last.y_spread
        );
    }

    // --- 5. Beam evolution: temporal parallel coordinates ---------------------
    let evo_start = sim.beam2_injection_step.min(sim.beam1_injection_step);
    let evo_steps: Vec<usize> = (evo_start..(evo_start + 9).min(steps.len())).collect();
    let temporal =
        explorer.render_temporal(&beam.ids, &evo_steps, &["x", "xrel", "px", "py"], 128, 0.9)?;
    explorer.save_image(
        &temporal,
        &image_dir.join(format!("beam_evolution_{tag}.ppm")),
    )?;
    println!(
        "beam evolution: temporal parallel coordinates over t={}..{} written to target/vdx-examples/",
        evo_steps.first().unwrap(),
        evo_steps.last().unwrap()
    );

    println!("done; images are in target/vdx-examples/");
    Ok(())
}
