//! A laptop-scale rerun of the paper's Section V-C scalability study
//! (Figures 14–17): parallel histogram computation and parallel particle
//! tracking over a catalog of timestep files, swept over worker ("node")
//! counts, for both the FastBit (indexed) and Custom (scanning) engines.
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_study [-- <particles_per_step> <timesteps>]
//! ```

use std::time::Instant;

use vdx_core::prelude::*;

fn main() -> vdx_core::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let particles: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let timesteps: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(24);

    let out_dir = std::env::temp_dir().join("vdx-scaling-study");
    println!("== generating scaling catalog: {timesteps} timesteps x {particles} particles ==");
    let sim = SimConfig::scaling(particles, timesteps);
    let gen_start = Instant::now();
    let explorer = DataExplorer::generate(&out_dir, sim.clone(), ExplorerConfig::default())?;
    println!(
        "   generated + indexed in {:.1} s, {:.1} MB on disk",
        gen_start.elapsed().as_secs_f64(),
        explorer.catalog().total_size_bytes()? as f64 / 1e6
    );

    // The paper computes five histogram pairs of the position and momentum
    // fields at 1024x1024 bins with a px > 7e10 condition, and tracks ~500
    // particles selected with px > 1e11.
    let pairs = vec![
        ("x", "px"),
        ("y", "py"),
        ("z", "pz"),
        ("x", "y"),
        ("px", "py"),
    ];
    let bins = 1024;
    let cond_threshold = lwfa::physics::suggested_beam_threshold(&sim, timesteps - 1);
    let condition = QueryExpr::pred("px", ValueRange::gt(cond_threshold));
    let track_sel = explorer.select(timesteps - 1, &format!("px > {:e}", cond_threshold * 1.2))?;
    println!("   tracking set: {} particles", track_sel.ids.len());

    let node_counts = [1usize, 2, 4, 8];
    println!("\n-- Figures 14/15: parallel histogram computation ({bins}x{bins} bins, 5 pairs) --");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "fb_uncond", "cu_uncond", "fb_cond", "cu_cond"
    );
    let mut baseline: Option<[f64; 4]> = None;
    for &nodes in &node_counts {
        let pool = NodePool::new(nodes);
        let mut row = [0.0f64; 4];
        for (i, (engine, cond)) in [
            (HistEngine::FastBit, None),
            (HistEngine::Custom, None),
            (HistEngine::FastBit, Some(condition.clone())),
            (HistEngine::Custom, Some(condition.clone())),
        ]
        .into_iter()
        .enumerate()
        {
            let mut stage = HistogramStage::new(pairs.clone(), bins).with_engine(engine);
            if let Some(c) = cond {
                stage = stage.with_condition(c);
            }
            let out = stage.run(explorer.catalog(), &pool)?;
            row[i] = out.elapsed.as_secs_f64();
        }
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            nodes, row[0], row[1], row[2], row[3]
        );
        if baseline.is_none() {
            baseline = Some(row);
        }
    }
    if let Some(base) = baseline {
        println!(
            "   speedup at {} nodes vs 1 node:",
            node_counts.last().unwrap()
        );
        println!("   (rerun the loop above to read them; ideal = number of nodes)");
        let _ = base;
    }

    println!(
        "\n-- Figures 16/17: parallel particle tracking ({} ids) --",
        track_sel.ids.len()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "nodes", "fastbit_s", "custom_s", "speedup_fb"
    );
    let mut fb_one = None;
    for &nodes in &node_counts {
        let pool = NodePool::new(nodes);
        let fb =
            Tracker::new(HistEngine::FastBit).track(explorer.catalog(), &track_sel.ids, &pool)?;
        let cu =
            Tracker::new(HistEngine::Custom).track(explorer.catalog(), &track_sel.ids, &pool)?;
        let fb_s = fb.elapsed.as_secs_f64();
        if fb_one.is_none() {
            fb_one = Some(fb_s);
        }
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>10.2}",
            nodes,
            fb_s,
            cu.elapsed.as_secs_f64(),
            fb_one.unwrap() / fb_s
        );
    }
    println!("\ndone");
    Ok(())
}
