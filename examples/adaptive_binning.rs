//! Rendering comparisons from Figures 2, 3 and 4:
//!
//! * traditional polyline parallel coordinates vs histogram-based rendering,
//! * the effect of the gamma (brightness) control,
//! * high-resolution (700 bins) vs low-resolution (80 bins) histograms,
//! * uniform vs adaptive (equal-weight) 32×32 binning.
//!
//! All renderings are written as PPM images under `target/vdx-examples/`.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_binning
//! ```

use vdx_core::prelude::*;

fn main() -> vdx_core::Result<()> {
    let out_dir = std::env::temp_dir().join("vdx-adaptive-binning");
    let image_dir = std::path::PathBuf::from("target/vdx-examples");
    std::fs::create_dir_all(&image_dir)?;

    // Figure 2 uses a subset of ~256k records with 7 dimensions; scale to
    // taste via the first CLI argument.
    let particles = std::env::args()
        .nth(1)
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(60_000);
    let sim = SimConfig::paper_2d(particles);
    let explorer = DataExplorer::generate(&out_dir, sim.clone(), ExplorerConfig::default())?;
    let step = sim.beam1_dephasing_step; // a timestep with interesting structure
    let axes = ["x", "y", "px", "py", "xrel"];

    let save = |image: &Framebuffer, name: &str| -> vdx_core::Result<()> {
        let path = image_dir.join(name);
        image.save_ppm(&path)?;
        println!(
            "  wrote {} ({:.1}% of pixels lit)",
            path.display(),
            image.coverage(Rgba::BLACK) * 100.0
        );
        Ok(())
    };

    // (a) Traditional line-based parallel coordinates.
    println!("Figure 2a: polyline rendering of {particles} records");
    let start = std::time::Instant::now();
    let polylines = explorer.render_polylines(step, &axes, None)?;
    println!(
        "  rendered in {:.3} s (cost grows with record count)",
        start.elapsed().as_secs_f64()
    );
    save(&polylines, "fig2a_polylines.ppm")?;

    // (b) Histogram-based rendering, 700 bins per dimension.
    println!("Figure 2b: histogram-based rendering, 700 bins");
    let start = std::time::Instant::now();
    let hist_700 = explorer.render_focus_context(step, &axes, 700, None, 1.0)?;
    println!(
        "  rendered in {:.3} s (cost depends on bins, not records)",
        start.elapsed().as_secs_f64()
    );
    save(&hist_700, "fig2b_hist700.ppm")?;

    // (c) Same rendering with a lower gamma: sparse bins fade out.
    println!("Figure 2c: lower gamma removes sparse bins");
    let hist_dim = explorer.render_focus_context(step, &axes, 700, None, 0.3)?;
    save(&hist_dim, "fig2c_hist700_lowgamma.ppm")?;
    println!(
        "  mean luminance {:.4} (gamma 1.0) vs {:.4} (gamma 0.3)",
        hist_700.mean_luminance(),
        hist_dim.mean_luminance()
    );

    // (d) 80 bins per dimension: a coarser level of detail.
    println!("Figure 2d: histogram-based rendering, 80 bins");
    let hist_80 = explorer.render_focus_context(step, &axes, 80, None, 1.0)?;
    save(&hist_80, "fig2d_hist80.ppm")?;

    // Figures 3 & 4: uniform vs adaptive 32×32 binning, with a focus layer.
    println!("Figures 3-4: uniform vs adaptive 32x32 binning");
    let threshold = lwfa::physics::suggested_beam_threshold(&sim, step);
    let focus_query = format!("px > {threshold:e}");
    let plot = explorer.plot_for(step, &axes, PlotConfig::default())?;

    let uniform_ctx = explorer.axis_histograms(step, &axes, 32, None, false)?;
    let uniform_focus = explorer.axis_histograms(step, &axes, 32, Some(&focus_query), false)?;
    let uniform = plot.render(&[
        Layer::histograms(uniform_ctx, Rgba::CONTEXT_GRAY),
        Layer::histograms(uniform_focus, Rgba::FOCUS_RED),
    ]);
    save(&uniform, "fig4_uniform32.ppm")?;

    let adaptive_ctx = explorer.axis_histograms(step, &axes, 32, None, true)?;
    let adaptive_focus = explorer.axis_histograms(step, &axes, 32, Some(&focus_query), true)?;
    let adaptive = plot.render(&[
        Layer::histograms(adaptive_ctx, Rgba::CONTEXT_GRAY),
        Layer::histograms(adaptive_focus, Rgba::FOCUS_RED),
    ]);
    save(&adaptive, "fig4_adaptive32.ppm")?;

    println!("done; compare the images under target/vdx-examples/");
    Ok(())
}
